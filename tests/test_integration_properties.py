"""Property-based end-to-end tests: DBO's guarantees on random networks.

The central claim of the paper — DBO achieves LRTF in a *guaranteed*
manner for any network with in-order delivery — is checked here with
hypothesis generating arbitrary (bounded) network shapes, DBO parameters
and workloads.  Every generated run must show:

* zero LRTF violations (Definition 2),
* zero causality violations (Eq. 4),
* delivery schedules satisfying Corollary 1's necessary condition.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.base import NetworkSpec
from repro.core.params import DBOParams
from repro.core.system import DBODeployment
from repro.exchange.feed import FeedConfig
from repro.metrics.fairness import evaluate_fairness
from repro.net.latency import (
    CompositeLatency,
    ConstantLatency,
    StepLatency,
    UniformJitterLatency,
)
from repro.participants.response_time import RaceResponseTime, UniformResponseTime
from repro.sim.randomness import stable_u64
from repro.theory.fairness_defs import (
    causality_condition_violations,
    lrtf_violations,
)

# --- strategy: one participant's network -----------------------------------


@st.composite
def network_spec(draw, seed):
    kind = draw(st.sampled_from(["constant", "jitter", "spike"]))
    base_f = draw(st.floats(min_value=1.0, max_value=40.0))
    base_r = draw(st.floats(min_value=1.0, max_value=40.0))
    if kind == "constant":
        fwd = ConstantLatency(base_f)
        rev = ConstantLatency(base_r)
    elif kind == "jitter":
        jitter = draw(st.floats(min_value=0.1, max_value=15.0))
        fwd = UniformJitterLatency(base_f, jitter, seed=stable_u64(seed, 0))
        rev = UniformJitterLatency(base_r, jitter, seed=stable_u64(seed, 1))
    else:
        height = draw(st.floats(min_value=20.0, max_value=300.0))
        start = draw(st.floats(min_value=100.0, max_value=1500.0))
        width = draw(st.floats(min_value=50.0, max_value=500.0))
        fwd = CompositeLatency(
            [ConstantLatency(base_f), StepLatency([(0.0, 0.0), (start, height), (start + width, 0.0)])]
        )
        rev = ConstantLatency(base_r)
    return NetworkSpec(forward=fwd, reverse=rev)


@st.composite
def scenario(draw):
    n = draw(st.integers(min_value=2, max_value=5))
    specs = [draw(network_spec(seed=i)) for i in range(n)]
    delta = draw(st.sampled_from([10.0, 20.0, 45.0]))
    kappa = draw(st.sampled_from([0.1, 0.25, 1.0]))
    tau = draw(st.sampled_from([10.0, 20.0]))
    interval = draw(st.sampled_from([20.0, 40.0, 60.0]))
    tight = draw(st.booleans())
    seed = draw(st.integers(min_value=0, max_value=10_000))
    if tight:
        # RaceResponseTime staggers ranks above the base (RT = base +
        # gap·rank), so cap the base range such that even the slowest
        # racer stays strictly inside the δ horizon — the premise every
        # test here relies on.
        gap = 0.2
        rt_model = RaceResponseTime(
            n, low=2.0, high=delta - 0.5 - gap * (n - 1), gap=gap, seed=seed
        )
    else:
        rt_model = UniformResponseTime(low=2.0, high=delta - 0.5, seed=seed)
    return specs, DBOParams(delta=delta, kappa=kappa, tau=tau), interval, rt_model, seed


@given(scenario())
@settings(max_examples=25, deadline=None)
def test_dbo_guarantees_lrtf_on_arbitrary_networks(params_tuple):
    """With drift-free RB clocks, LRTF holds exactly — zero violations."""
    specs, params, interval, rt_model, seed = params_tuple
    deployment = DBODeployment(
        specs,
        params=params,
        feed_config=FeedConfig(interval=interval),
        response_time_model=rt_model,
        seed=seed,
        rb_clock_drift=0.0,
    )
    result = deployment.run(duration=2000.0, drain=10_000.0)
    assert lrtf_violations(result, delta=params.delta) == []
    assert causality_condition_violations(result) == []


@given(scenario())
@settings(max_examples=20, deadline=None)
def test_dbo_guarantees_lrtf_up_to_drift_margin(params_tuple):
    """With drifting RB clocks (rate ε), LRTF holds for every pair whose
    response-time margin exceeds ~2·ε·δ — the drift-adjusted guarantee."""
    specs, params, interval, rt_model, seed = params_tuple
    drift = 1e-4
    deployment = DBODeployment(
        specs,
        params=params,
        feed_config=FeedConfig(interval=interval),
        response_time_model=rt_model,
        seed=seed,
        rb_clock_drift=drift,
    )
    result = deployment.run(duration=2000.0, drain=10_000.0)
    margin = 2.0 * drift * params.delta
    assert lrtf_violations(result, delta=params.delta, min_margin=margin) == []


@given(scenario())
@settings(max_examples=15, deadline=None)
def test_dbo_orders_within_horizon_races_perfectly(params_tuple):
    specs, params, interval, rt_model, seed = params_tuple
    deployment = DBODeployment(
        specs,
        params=params,
        feed_config=FeedConfig(interval=interval),
        response_time_model=rt_model,
        seed=seed,
        rb_clock_drift=0.0,
    )
    result = deployment.run(duration=2000.0, drain=10_000.0)
    # All response times were drawn below δ, so LRTF ⇒ full fairness.
    report = evaluate_fairness(result)
    assert report.ratio == 1.0


@given(scenario())
@settings(max_examples=10, deadline=None)
def test_dbo_trades_all_complete_with_generous_drain(params_tuple):
    specs, params, interval, rt_model, seed = params_tuple
    deployment = DBODeployment(
        specs,
        params=params,
        feed_config=FeedConfig(interval=interval),
        response_time_model=rt_model,
        seed=seed,
    )
    result = deployment.run(duration=2000.0, drain=20_000.0)
    assert result.completion_ratio() == 1.0
