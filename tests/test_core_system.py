"""Integration tests for the full DBO deployment."""

import pytest

from repro.baselines.base import NetworkSpec, default_network_specs
from repro.core.params import DBOParams
from repro.core.system import DBODeployment
from repro.exchange.feed import FeedConfig
from repro.metrics.fairness import causality_violations, evaluate_fairness
from repro.metrics.latency import latency_stats, max_rtt_stats, trade_latencies
from repro.net.latency import ConstantLatency, UniformJitterLatency
from repro.participants.response_time import RaceResponseTime, UniformResponseTime
from repro.theory.fairness_defs import lrtf_violations


def run_dbo(specs, duration=4000.0, params=None, **kwargs):
    deployment = DBODeployment(specs, params=params or DBOParams(), **kwargs)
    return deployment, deployment.run(duration=duration)


class TestEndToEnd:
    def test_perfect_fairness_on_asymmetric_network(self):
        specs = default_network_specs(4, seed=5)
        _, result = run_dbo(specs)
        report = evaluate_fairness(result)
        assert report.total_pairs > 100
        assert report.ratio == 1.0

    def test_lrtf_holds_formally(self):
        specs = default_network_specs(5, seed=6)
        _, result = run_dbo(specs)
        assert lrtf_violations(result, delta=20.0) == []

    def test_causality_never_violated(self):
        specs = default_network_specs(4, seed=7)
        _, result = run_dbo(specs)
        assert causality_violations(result) == 0

    def test_all_trades_complete_after_drain(self):
        specs = default_network_specs(3, seed=8)
        _, result = run_dbo(specs)
        assert result.completion_ratio() == 1.0

    def test_deterministic_given_seed(self):
        specs = default_network_specs(3, seed=9)
        _, r1 = run_dbo(specs, seed=3)
        specs2 = default_network_specs(3, seed=9)
        _, r2 = run_dbo(specs2, seed=3)
        assert [t.forward_time for t in r1.trades] == [t.forward_time for t in r2.trades]
        assert [t.position for t in r1.trades] == [t.position for t in r2.trades]

    def test_latency_at_least_max_rtt_bound(self):
        specs = default_network_specs(4, seed=10)
        _, result = run_dbo(specs)
        lat = latency_stats(result)
        bound = max_rtt_stats(result)
        assert lat.avg >= bound.avg - 1e-6

    def test_added_latency_within_analysis_bound(self):
        """§4.2.1: at most (1+κ)δ + τ over the bound when the network is
        quiet (constant latency, no queue build-up)."""
        params = DBOParams(delta=20.0, kappa=0.25, tau=20.0)
        specs = [
            NetworkSpec(forward=ConstantLatency(8.0), reverse=ConstantLatency(9.0)),
            NetworkSpec(forward=ConstantLatency(12.0), reverse=ConstantLatency(7.0)),
        ]
        _, result = run_dbo(specs, params=params)
        latencies = trade_latencies(result)
        worst_rtt = max(12.0 + 7.0, 8.0 + 9.0)
        slack = params.worst_case_added_latency
        assert max(latencies) <= worst_rtt + slack + 1e-6

    def test_delivery_gaps_respect_delta(self):
        specs = default_network_specs(3, seed=11)
        deployment, result = run_dbo(specs, params=DBOParams(delta=20.0))
        for rb in deployment.release_buffers:
            times = sorted(set(rb.delivery_times.values()))
            gaps = [b - a for a, b in zip(times, times[1:])]
            # Local-clock drift (±1e-4) slightly rescales the enforced gap.
            assert all(gap >= 20.0 * (1 - 2e-4) for gap in gaps)

    def test_counters_present(self):
        specs = default_network_specs(3, seed=12)
        _, result = run_dbo(specs)
        for key in [
            "rb_max_queue_depth",
            "heartbeats_sent",
            "ob_heartbeats_processed",
            "ob_max_queue_depth",
            "batches_closed",
        ]:
            assert key in result.counters

    def test_network_send_times_recorded_per_point(self):
        specs = default_network_specs(2, seed=13)
        _, result = run_dbo(specs)
        assert set(result.network_send_times) == set(result.generation_times)
        for pid, sent in result.network_send_times.items():
            assert sent >= result.generation_times[pid]

    def test_tight_races_ordered_exactly(self):
        """Sub-µs response margins: DBO must still order perfectly."""
        specs = default_network_specs(6, seed=14)
        rt = RaceResponseTime(6, gap=0.05, seed=3)
        _, result = run_dbo(specs, response_time_model=rt)
        assert evaluate_fairness(result).ratio == 1.0


class TestClockIndependence:
    """DBO must not care about RB clock offsets (Challenge 1)."""

    def test_fairness_unaffected_by_extreme_offsets(self):
        specs = default_network_specs(4, seed=15)
        deployment = DBODeployment(specs, seed=1, rb_clock_drift=2e-4)
        result = deployment.run(duration=4000.0)
        assert evaluate_fairness(result).ratio == 1.0

    def test_zero_drift_and_high_drift_agree_on_ordering(self):
        orderings = []
        for drift in (0.0, 2e-4):
            specs = default_network_specs(4, seed=16)
            deployment = DBODeployment(specs, seed=2, rb_clock_drift=drift)
            result = deployment.run(duration=3000.0)
            orderings.append(
                sorted((t.key for t in result.completed_trades), key=lambda k: k)
            )
            assert evaluate_fairness(result).ratio == 1.0
        assert orderings[0] == orderings[1]


class TestShardedDeployment:
    def test_sharded_ob_preserves_fairness(self):
        specs = default_network_specs(6, seed=17)
        deployment = DBODeployment(specs, n_ob_shards=3, seed=4)
        result = deployment.run(duration=3000.0)
        assert evaluate_fairness(result).ratio == 1.0
        assert result.completion_ratio() == 1.0

    def test_sharded_matches_single_ob_ordering(self):
        def run(n_shards):
            specs = default_network_specs(4, seed=18)
            deployment = DBODeployment(specs, n_ob_shards=n_shards, seed=5)
            result = deployment.run(duration=3000.0)
            me = deployment.ces.matching_engine
            return me.ordering()

        assert run(1) == run(2)

    def test_master_processes_fewer_messages_than_flat_heartbeats(self):
        specs = default_network_specs(8, seed=19)
        deployment = DBODeployment(specs, n_ob_shards=4, seed=6)
        result = deployment.run(duration=3000.0)
        assert result.counters["shard_heartbeats_processed"] > 0
        assert result.counters["master_summaries_processed"] > 0


class TestSlowResponders:
    def test_fairness_holds_just_past_horizon_with_stable_network(self):
        """§6.3.2: RT > δ stays fair when inter-delivery times are equal
        (here: constant latency ⇒ exactly equal)."""
        specs = [
            NetworkSpec(forward=ConstantLatency(10.0), reverse=ConstantLatency(10.0)),
            NetworkSpec(forward=ConstantLatency(14.0), reverse=ConstantLatency(12.0)),
            NetworkSpec(forward=ConstantLatency(18.0), reverse=ConstantLatency(8.0)),
        ]
        rt = UniformResponseTime(low=25.0, high=35.0, seed=5)  # > δ = 20
        _, result = run_dbo(specs, duration=4000.0, response_time_model=rt)
        assert evaluate_fairness(result).ratio == 1.0
