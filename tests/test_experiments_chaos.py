"""Tests for the chaos scenario family (experiments/chaos.py).

Pins the ISSUE acceptance criteria:

* chaos determinism — same seed + same plan ⇒ identical trade-ordering
  digest AND identical auditor report across two invocations;
* the auditor reports zero safety violations on fault-free runs for
  every registered scheme.
"""

import pytest

from repro.baselines.base import NetworkSpec
from repro.experiments.chaos import (
    CHAOS_PLANS,
    audit_all_schemes,
    make_plan,
    run_chaos,
)
from repro.experiments.registry import available_schemes
from repro.metrics.degradation import fairness_degradation
from repro.net.latency import ConstantLatency


def specs_factory(n=4):
    def factory():
        return [
            NetworkSpec(
                forward=ConstantLatency(10.0 + i), reverse=ConstantLatency(10.0 + i)
            )
            for i in range(n)
        ]

    return factory


class TestPlans:
    def test_every_named_plan_instantiates(self):
        for name in CHAOS_PLANS:
            plan = make_plan(name, duration=10_000.0, n_participants=4)
            assert len(plan) >= 1
            assert plan.name == name
            # Scaled to the duration: nothing fires after the feed stops.
            assert all(f.at < 10_000.0 for f in plan)

    def test_unknown_plan_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos plan"):
            make_plan("tsunami", 10_000.0, 4)


class TestRunChaos:
    def run_once(self, plan_name="link-flaky", **kwargs):
        plan = make_plan(plan_name, 8_000.0, 4)
        return run_chaos(
            "dbo", specs_factory(), duration=8_000.0, plan=plan, seed=5, **kwargs
        )

    def test_clean_twin_unaffected_by_faults(self):
        report = self.run_once()
        assert report.degradation.clean_completion == 1.0
        assert report.clean_audit.ok
        assert report.clean_audit.violations == []

    def test_smoke_plan_has_zero_safety_violations(self):
        report = self.run_once("link-flaky")
        assert report.safe
        assert report.faulted_audit.ok

    def test_determinism_across_invocations(self):
        first = self.run_once()
        second = self.run_once()
        assert first.clean_digest == second.clean_digest
        assert first.faulted_digest == second.faulted_digest
        assert first.faulted_audit.to_dict() == second.faulted_audit.to_dict()
        assert first.injector_summary == second.injector_summary
        assert first.to_dict() == second.to_dict()

    def test_faults_actually_fired(self):
        report = self.run_once()
        assert report.injector_summary["faults_fired"] == 2
        assert report.injector_summary["faults_recovered"] == 2

    def test_shard_plan_forces_shards(self):
        report = self.run_once("shard-loss")
        assert report.faulted.counters["shard_failures"] == 1

    def test_gateway_plan_forces_gateway(self):
        report = self.run_once("gateway-stall")
        assert report.faulted.counters["gateway_stalls"] == 1

    def test_to_dict_round_trips_to_json(self):
        import json

        doc = self.run_once().to_dict()
        json.dumps(doc)  # must be JSON-serializable as-is
        assert doc["safe"] is True


class TestFaultFreeAuditAllSchemes:
    def test_every_registered_scheme_audits_clean(self):
        reports = audit_all_schemes(
            specs_factory(),
            duration=5_000.0,
            seed=3,
            # FBA's default auction period exceeds the run; shorten it so
            # its matching engine actually sees trades.
            scheme_kwargs={"fba": {"batch_interval": 500.0}},
        )
        assert set(reports) == set(available_schemes())
        for scheme, report in reports.items():
            assert report.ok, f"{scheme}: {report.counts()}"
            assert report.violations == []
            assert report.releases_checked > 0, scheme


class TestDegradationReport:
    def test_scheme_mismatch_rejected(self):
        report = TestRunChaos().run_once()
        clean, faulted = report.clean, report.faulted
        faulted.scheme = "cloudex"
        with pytest.raises(ValueError, match="clean twin"):
            fairness_degradation(clean, faulted)

    def test_properties(self):
        report = TestRunChaos().run_once("latency-spike")
        deg = report.degradation
        assert deg.p99_inflation >= 1.0  # faults never improve p99 here
        assert deg.to_dict()["p99_inflation"] == deg.p99_inflation
        assert -5.0 <= deg.fairness_drop_pct <= 100.0


class TestDriftStorm:
    """The clock_drift satellite: ε-robustness must survive drift storms."""

    def run_once(self, **kwargs):
        plan = make_plan("drift-storm", 8_000.0, 4)
        return run_chaos(
            "dbo", specs_factory(), duration=8_000.0, plan=plan, seed=5, **kwargs
        )

    def test_storm_targets_one_subtree(self):
        # Even-index participants only: shard-0's round-robin subtree.
        plan = make_plan("drift-storm", 8_000.0, 6)
        assert [f.target for f in plan] == ["mp0", "mp2", "mp4"]
        assert all(f.kind == "clock_drift" for f in plan)
        assert all(f.ends_at is not None and f.ends_at < 8_000.0 for f in plan)

    def test_flat_run_stays_safe(self):
        report = self.run_once()
        assert report.safe
        assert report.injector_summary["faults_fired"] == 2
        assert report.injector_summary["faults_recovered"] == 2
        assert report.degradation.faulted_completion == 1.0

    def test_tree_run_stays_safe(self):
        from repro.core.params import AggregationTopology

        report = self.run_once(topology=AggregationTopology(fanout=2, depth=2))
        assert report.safe
        assert report.faulted_audit.safety_violations == []
        assert report.degradation.faulted_completion == 1.0

    def test_storm_is_deterministic(self):
        first = self.run_once()
        second = self.run_once()
        assert first.faulted_digest == second.faulted_digest
        assert first.to_dict() == second.to_dict()
