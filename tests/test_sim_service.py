"""Tests for the single-server service queue and the OB capacity model."""

import pytest

from repro.core.params import DBOParams
from repro.core.system import DBODeployment
from repro.experiments.scenarios import cloud_specs
from repro.metrics.fairness import evaluate_fairness
from repro.metrics.latency import latency_stats
from repro.participants.response_time import UniformResponseTime
from repro.sim.engine import EventEngine
from repro.sim.service import ServiceQueue


class TestServiceQueue:
    def test_idle_server_serves_after_service_time(self):
        engine = EventEngine()
        done = []
        queue = ServiceQueue(engine, 2.0, handler=lambda item, t: done.append((item, t)))
        engine.schedule_at(10.0, lambda: queue.submit("a"))
        engine.run()
        assert done == [("a", 12.0)]

    def test_backlog_queues_fifo(self):
        engine = EventEngine()
        done = []
        queue = ServiceQueue(engine, 2.0, handler=lambda item, t: done.append((item, t)))

        def burst():
            queue.submit("a")
            queue.submit("b")
            queue.submit("c")

        engine.schedule_at(10.0, burst)
        engine.run()
        assert done == [("a", 12.0), ("b", 14.0), ("c", 16.0)]

    def test_zero_service_time_is_passthrough(self):
        engine = EventEngine()
        done = []
        queue = ServiceQueue(engine, 0.0, handler=lambda item, t: done.append(t))
        engine.schedule_at(5.0, lambda: queue.submit("x"))
        engine.run()
        assert done == [5.0]

    def test_counters(self):
        engine = EventEngine()
        queue = ServiceQueue(engine, 2.0, handler=lambda item, t: None)
        engine.schedule_at(0.0, lambda: [queue.submit(i) for i in range(5)])
        engine.run()
        assert queue.messages_served == 5
        assert queue.busy_time == 10.0
        assert queue.max_delay == 10.0
        assert queue.utilization(100.0) == pytest.approx(0.1)

    def test_backlog_delay(self):
        engine = EventEngine()
        queue = ServiceQueue(engine, 3.0, handler=lambda item, t: None)
        engine.schedule_at(0.0, lambda: [queue.submit(i) for i in range(4)])
        engine.schedule_at(0.0, lambda: None)
        engine.run(until=0.0)
        assert queue.backlog_delay == pytest.approx(12.0)

    def test_validation(self):
        engine = EventEngine()
        with pytest.raises(ValueError):
            ServiceQueue(engine, -1.0)
        queue = ServiceQueue(engine, 1.0)
        with pytest.raises(RuntimeError):
            queue.submit("x")
        with pytest.raises(ValueError):
            queue.utilization(0.0)


class TestOBCapacityModel:
    """§5.2: the flat OB saturates with participants; shards do not."""

    def run(self, n, shards, service=0.8):
        deployment = DBODeployment(
            cloud_specs(n, seed=12),
            params=DBOParams(),
            response_time_model=UniformResponseTime(5.0, 19.0, seed=1),
            seed=2,
            n_ob_shards=shards,
            ob_service_time=service,
        )
        return deployment.run(duration=4000.0)

    def test_light_load_unaffected(self):
        with_svc = latency_stats(self.run(4, 1)).avg
        deployment = DBODeployment(
            cloud_specs(4, seed=12),
            params=DBOParams(),
            response_time_model=UniformResponseTime(5.0, 19.0, seed=1),
            seed=2,
        )
        without = latency_stats(deployment.run(duration=4000.0)).avg
        assert with_svc == pytest.approx(without, abs=5.0)

    def test_flat_ob_saturates_sharded_does_not(self):
        flat = self.run(32, 1)
        sharded = self.run(32, 4)
        assert latency_stats(flat).avg > 10 * latency_stats(sharded).avg
        assert flat.counters["ob_service_max_delay"] > 100.0
        assert sharded.counters["ob_service_max_delay"] < 50.0

    def test_fairness_survives_saturation(self):
        # Saturation delays everything equally at the single OB: ordering
        # is still by stamp, so fairness holds even while latency explodes.
        flat = self.run(16, 1, service=1.5)
        assert evaluate_fairness(flat).ratio > 0.999
