"""Property-based tests for the CES batcher (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batcher import Batcher
from repro.exchange.messages import MarketDataPoint
from repro.sim.engine import EventEngine


@st.composite
def batcher_scenario(draw):
    span = draw(st.sampled_from([10.0, 25.0, 60.0, 120.0]))
    interval = draw(st.sampled_from([5.0, 10.0, 40.0, 100.0]))
    count = draw(st.integers(min_value=1, max_value=80))
    determined = draw(st.booleans())
    return span, interval, count, determined


def run_batcher(span, interval, count, determined):
    engine = EventEngine()
    batches = []
    batcher = Batcher(
        engine,
        batch_span=span,
        sink=lambda b: batches.append((b, engine.now)),
        feed_interval=interval if determined else None,
    )
    batcher.start(0.0)
    for i in range(count):
        t = i * interval
        point = MarketDataPoint(point_id=i, generation_time=t)
        engine.schedule_at(t, lambda p=point: batcher.on_point(p), priority=1)
    engine.run(until=count * interval + 3 * span)
    return batches


@given(batcher_scenario())
@settings(max_examples=120, deadline=None)
def test_every_point_batched_exactly_once_in_order(scenario):
    span, interval, count, determined = scenario
    batches = run_batcher(span, interval, count, determined)
    ids = [p.point_id for b, _ in batches for p in b.points]
    assert ids == list(range(count))


@given(batcher_scenario())
@settings(max_examples=120, deadline=None)
def test_batches_emitted_after_their_points(scenario):
    span, interval, count, determined = scenario
    batches = run_batcher(span, interval, count, determined)
    for batch, emitted_at in batches:
        assert emitted_at >= batch.points[-1].generation_time - 1e-9
        # Batching delay is bounded by the window span.
        assert emitted_at - batch.points[0].generation_time <= span + 1e-9


@given(batcher_scenario())
@settings(max_examples=120, deadline=None)
def test_batch_rate_bounded_by_window_grid(scenario):
    """At most one batch per span-window: the 1/((1+κ)δ) rate bound."""
    span, interval, count, determined = scenario
    batches = run_batcher(span, interval, count, determined)
    total_time = count * interval + 3 * span
    assert len(batches) <= total_time / span + 1


@given(batcher_scenario())
@settings(max_examples=120, deadline=None)
def test_batch_ids_sequential_and_points_consecutive(scenario):
    span, interval, count, determined = scenario
    batches = run_batcher(span, interval, count, determined)
    assert [b.batch_id for b, _ in batches] == list(range(len(batches)))
    for batch, _ in batches:
        ids = [p.point_id for p in batch.points]
        assert ids == list(range(ids[0], ids[0] + len(ids)))
