"""Unit tests for the declarative fault plan (FaultSpec / FaultSchedule)."""

import json

import pytest

from repro.faults.plan import FAULT_KINDS, FaultSchedule, FaultSpec


class TestFaultSpecValidation:
    def test_minimal_valid_specs(self):
        FaultSpec(kind="link_burst_loss", at=10.0, duration=5.0, target="mp0",
                  magnitude=0.5)
        FaultSpec(kind="latency_degradation", at=0.0, duration=5.0, target="mp1",
                  magnitude=100.0)
        FaultSpec(kind="partition", at=1.0, duration=2.0, target="mp0")
        FaultSpec(kind="rb_crash", at=1.0, target="mp0")
        FaultSpec(kind="ob_failover", at=1.0)
        FaultSpec(kind="shard_failure", at=1.0, target="shard-0")
        FaultSpec(kind="gateway_stall", at=1.0, duration=3.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor_strike", at=0.0)

    def test_negative_trigger_time_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="ob_failover", at=-1.0)

    def test_duration_required_for_window_kinds(self):
        for kind in ("link_burst_loss", "partition", "gateway_stall"):
            with pytest.raises(ValueError, match="duration"):
                FaultSpec(kind=kind, at=0.0, target="mp0", magnitude=0.5)

    def test_instantaneous_kinds_reject_duration(self):
        with pytest.raises(ValueError, match="no duration"):
            FaultSpec(kind="ob_failover", at=0.0, duration=5.0)
        with pytest.raises(ValueError, match="no duration"):
            FaultSpec(kind="shard_failure", at=0.0, duration=5.0, target="shard-0")

    def test_target_required_for_link_kinds(self):
        with pytest.raises(ValueError, match="target"):
            FaultSpec(kind="partition", at=0.0, duration=1.0)
        with pytest.raises(ValueError, match="target"):
            FaultSpec(kind="rb_crash", at=0.0)

    def test_burst_magnitude_bounds(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="link_burst_loss", at=0.0, duration=1.0, target="mp0",
                      magnitude=0.0)
        with pytest.raises(ValueError):
            FaultSpec(kind="link_burst_loss", at=0.0, duration=1.0, target="mp0",
                      magnitude=1.5)

    def test_latency_degradation_must_change_something(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="latency_degradation", at=0.0, duration=1.0,
                      target="mp0", magnitude=0.0, factor=1.0)

    def test_direction_validated(self):
        with pytest.raises(ValueError, match="direction"):
            FaultSpec(kind="partition", at=0.0, duration=1.0, target="mp0",
                      direction="sideways")

    def test_ends_at(self):
        spec = FaultSpec(kind="partition", at=10.0, duration=5.0, target="mp0")
        assert spec.ends_at == 15.0
        assert FaultSpec(kind="ob_failover", at=10.0).ends_at is None


class TestSerialization:
    def test_round_trip_preserves_specs(self):
        plan = FaultSchedule.of(
            FaultSpec(kind="rb_crash", at=20.0, duration=10.0, target="mp1"),
            FaultSpec(kind="link_burst_loss", at=5.0, duration=3.0, target="mp0",
                      magnitude=0.25, direction="both", seed=9),
            name="round-trip",
        )
        clone = FaultSchedule.from_json(plan.to_json())
        assert clone == plan
        assert clone.name == "round-trip"
        # of() sorts by trigger time.
        assert [f.at for f in clone] == [5.0, 20.0]

    def test_to_dict_is_sparse(self):
        doc = FaultSpec(kind="ob_failover", at=3.0).to_dict()
        assert doc == {"kind": "ob_failover", "at": 3.0}

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            FaultSpec.from_dict({"kind": "ob_failover", "at": 1.0, "blast_radius": 3})

    def test_load_from_file(self, tmp_path):
        plan = FaultSchedule.of(
            FaultSpec(kind="partition", at=4.0, duration=2.0, target="mp2"),
            name="disk",
        )
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert FaultSchedule.load(str(path)) == plan

    def test_json_is_actual_json(self):
        plan = FaultSchedule.of(FaultSpec(kind="ob_failover", at=1.0))
        doc = json.loads(plan.to_json())
        assert doc["faults"][0]["kind"] == "ob_failover"


class TestSchedule:
    def test_sorted_by_trigger_time(self):
        plan = FaultSchedule.of(
            FaultSpec(kind="ob_failover", at=30.0),
            FaultSpec(kind="rb_crash", at=10.0, target="mp0"),
            FaultSpec(kind="rb_crash", at=20.0, duration=5.0, target="mp1"),
        )
        assert [f.at for f in plan] == [10.0, 20.0, 30.0]
        assert len(plan) == 3

    def test_kinds(self):
        plan = FaultSchedule.of(
            FaultSpec(kind="rb_crash", at=10.0, target="mp0"),
            FaultSpec(kind="ob_failover", at=30.0),
        )
        assert set(plan.kinds) == {"rb_crash", "ob_failover"}

    def test_all_kinds_registered(self):
        assert FAULT_KINDS == {
            "link_burst_loss", "latency_degradation", "partition",
            "rb_crash", "ob_failover", "shard_failure", "gateway_stall",
            "duplicate_delivery", "clock_drift", "aggregator_failure",
            "ces_hiccup",
        }


class TestChannelAddressing:
    def test_channel_address_accepted_for_link_kinds(self):
        spec = FaultSpec(kind="link_burst_loss", at=0.0, duration=1.0,
                         channel="ack-mp0", magnitude=0.5)
        assert spec.channel == "ack-mp0"
        FaultSpec(kind="partition", at=0.0, duration=1.0, channel="egress")
        FaultSpec(kind="latency_degradation", at=0.0, duration=1.0,
                  channel="shard-0->master", magnitude=50.0)

    def test_channel_rejected_for_non_channel_kinds(self):
        with pytest.raises(ValueError, match="does not address a channel"):
            FaultSpec(kind="rb_crash", at=0.0, channel="rev-mp0")
        with pytest.raises(ValueError, match="does not address a channel"):
            FaultSpec(kind="ob_failover", at=0.0, channel="ob-adopt")

    def test_channel_and_target_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            FaultSpec(kind="partition", at=0.0, duration=1.0, target="mp0",
                      channel="fwd-mp0")

    def test_duplicate_delivery_needs_channel_or_target(self):
        with pytest.raises(ValueError, match="target or a channel"):
            FaultSpec(kind="duplicate_delivery", at=0.0, duration=1.0,
                      magnitude=0.5)

    def test_duplicate_delivery_magnitude_bounds(self):
        for magnitude in (0.0, 1.5):
            with pytest.raises(ValueError, match="magnitude"):
                FaultSpec(kind="duplicate_delivery", at=0.0, duration=1.0,
                          channel="rev-mp0", magnitude=magnitude)

    def test_duplicate_delivery_requires_duration(self):
        with pytest.raises(ValueError, match="duration"):
            FaultSpec(kind="duplicate_delivery", at=0.0, channel="rev-mp0",
                      magnitude=0.5)

    def test_channel_round_trips_through_json(self):
        plan = FaultSchedule.of(
            FaultSpec(kind="duplicate_delivery", at=5.0, duration=3.0,
                      channel="rev-mp0", magnitude=0.4, seed=7),
            name="dup",
        )
        clone = FaultSchedule.from_json(plan.to_json())
        assert clone == plan
        assert clone.faults[0].channel == "rev-mp0"

    def test_to_dict_omits_absent_channel(self):
        doc = FaultSpec(kind="partition", at=1.0, duration=2.0,
                        target="mp0").to_dict()
        assert "channel" not in doc


class TestClockDriftSpec:
    def test_valid_spec_accepted(self):
        spec = FaultSpec(kind="clock_drift", at=10.0, duration=50.0,
                         target="mp0", magnitude=0.05)
        assert spec.ends_at == 60.0

    def test_permanent_drift_allowed(self):
        spec = FaultSpec(kind="clock_drift", at=10.0, target="mp0",
                         magnitude=-0.5)
        assert spec.ends_at is None

    def test_target_required(self):
        with pytest.raises(ValueError, match="requires a target"):
            FaultSpec(kind="clock_drift", at=10.0, magnitude=0.05)

    def test_zero_magnitude_rejected(self):
        with pytest.raises(ValueError, match="change the drift rate"):
            FaultSpec(kind="clock_drift", at=10.0, target="mp0", magnitude=0.0)

    def test_backwards_clock_rejected(self):
        with pytest.raises(ValueError, match="exceed -1"):
            FaultSpec(kind="clock_drift", at=10.0, target="mp0", magnitude=-1.0)

    def test_channel_address_rejected(self):
        with pytest.raises(ValueError, match="does not address a channel"):
            FaultSpec(kind="clock_drift", at=10.0, channel="rev-mp0",
                      magnitude=0.05)

    def test_round_trips_through_json(self):
        plan = FaultSchedule.of(
            FaultSpec(kind="clock_drift", at=5.0, duration=3.0, target="mp1",
                      magnitude=-0.8),
            name="drift",
        )
        assert FaultSchedule.from_json(plan.to_json()) == plan


class TestNewFaultKinds:
    def test_aggregator_failure_spec(self):
        spec = FaultSpec(kind="aggregator_failure", at=10.0, target="agg1-0")
        assert spec.ends_at is None

    def test_aggregator_failure_needs_target_and_no_duration(self):
        with pytest.raises(ValueError, match="requires a target"):
            FaultSpec(kind="aggregator_failure", at=10.0)
        with pytest.raises(ValueError, match="no duration"):
            FaultSpec(kind="aggregator_failure", at=10.0, duration=5.0,
                      target="agg1-0")

    def test_ces_hiccup_spec(self):
        spec = FaultSpec(kind="ces_hiccup", at=10.0, duration=20.0)
        assert spec.ends_at == 30.0

    def test_ces_hiccup_is_global_and_windowed(self):
        with pytest.raises(ValueError, match="duration"):
            FaultSpec(kind="ces_hiccup", at=10.0)
        with pytest.raises(ValueError, match="no target"):
            FaultSpec(kind="ces_hiccup", at=10.0, duration=20.0, target="mp0")

    def test_partition_accepts_channel_glob(self):
        spec = FaultSpec(kind="partition", at=10.0, duration=5.0,
                         channel="ack-*")
        assert spec.channel == "ack-*"


class TestFromTrace:
    def _trace(self, values, step=10.0):
        from repro.net.trace import NetworkTrace
        times = tuple(index * step for index in range(len(values)))
        return NetworkTrace(times=times, values=tuple(values))

    def test_excursions_become_latency_windows(self):
        trace = self._trace([1.0, 1.0, 9.0, 9.0, 1.0, 1.0, 5.0, 1.0])
        plan = FaultSchedule.from_trace(trace, threshold=2.0, target="mp0",
                                        direction="both", name="storm")
        assert plan.name == "storm"
        assert [f.kind for f in plan] == ["latency_degradation"] * 2
        first, second = plan.faults
        # First excursion: samples at t=20,30 above threshold, closed at 40.
        assert first.at == 20.0
        assert first.duration == 20.0
        # Extra one-way latency is half the peak excess (trace is RTT).
        assert first.magnitude == pytest.approx((9.0 - 2.0) / 2.0)
        assert second.at == 60.0
        assert second.magnitude == pytest.approx((5.0 - 2.0) / 2.0)

    def test_trailing_excursion_closed_at_trace_end(self):
        trace = self._trace([1.0, 8.0, 8.0])
        plan = FaultSchedule.from_trace(trace, threshold=2.0, target="mp0")
        assert len(plan) == 1
        assert plan.faults[0].at == 10.0
        assert plan.faults[0].duration == 10.0

    def test_default_threshold_is_p95(self):
        values = [1.0] * 99 + [100.0]
        trace = self._trace(values)
        plan = FaultSchedule.from_trace(trace, target="mp0")
        assert len(plan) == 1
        assert plan.faults[0].magnitude == pytest.approx(
            (100.0 - trace.percentile(95.0)) / 2.0
        )

    def test_channel_addressing_and_exclusivity(self):
        trace = self._trace([1.0, 9.0, 1.0])
        plan = FaultSchedule.from_trace(trace, threshold=2.0,
                                        channel="rev-mp0")
        assert plan.faults[0].channel == "rev-mp0"
        with pytest.raises(ValueError, match="exactly one"):
            FaultSchedule.from_trace(trace, threshold=2.0)
        with pytest.raises(ValueError, match="exactly one"):
            FaultSchedule.from_trace(trace, threshold=2.0, target="mp0",
                                     channel="rev-mp0")

    def test_quiet_trace_yields_empty_plan(self):
        trace = self._trace([1.0, 1.0, 1.0])
        plan = FaultSchedule.from_trace(trace, threshold=2.0, target="mp0")
        assert len(plan) == 0

    def test_scale_applies_to_magnitude(self):
        trace = self._trace([1.0, 6.0, 1.0])
        plan = FaultSchedule.from_trace(trace, threshold=2.0, target="mp0",
                                        scale=0.5)
        assert plan.faults[0].magnitude == pytest.approx(0.5 * (6.0 - 2.0) / 2.0)

    def test_derived_plan_round_trips_through_json(self):
        trace = self._trace([1.0, 9.0, 1.0, 7.0])
        plan = FaultSchedule.from_trace(trace, threshold=2.0, target="mp2",
                                        direction="both", name="replay")
        assert FaultSchedule.from_json(plan.to_json()) == plan
