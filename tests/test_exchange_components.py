"""Unit tests for matching engine, sequencer, feed, CES, and messages."""

import pytest

from repro.exchange.ces import CentralExchangeServer
from repro.exchange.feed import FeedConfig, MarketDataFeed
from repro.exchange.matching import MatchingEngine
from repro.exchange.messages import (
    MarketDataBatch,
    MarketDataPoint,
    Side,
    TradeOrder,
)
from repro.exchange.sequencer import FCFSSequencer
from repro.sim.engine import EventEngine


def order(mp, seq, side=Side.BUY, price=10.0, qty=1):
    return TradeOrder(mp_id=mp, trade_seq=seq, side=side, price=price, quantity=qty)


class TestMatchingEngine:
    def test_positions_follow_submission_order(self):
        me = MatchingEngine(execute=False)
        me.submit(order("a", 0), forward_time=1.0)
        me.submit(order("b", 0), forward_time=2.0)
        assert me.position_of(("a", 0)) == 0
        assert me.position_of(("b", 0)) == 1
        assert me.ordering() == [("a", 0), ("b", 0)]

    def test_forward_times_recorded(self):
        me = MatchingEngine(execute=False)
        me.submit(order("a", 0), forward_time=7.5)
        assert me.forward_time_of(("a", 0)) == 7.5

    def test_unknown_trade_returns_none(self):
        me = MatchingEngine(execute=False)
        assert me.position_of(("zzz", 1)) is None
        assert me.forward_time_of(("zzz", 1)) is None

    def test_double_forward_rejected(self):
        me = MatchingEngine(execute=False)
        me.submit(order("a", 0), forward_time=1.0)
        with pytest.raises(ValueError):
            me.submit(order("a", 0), forward_time=2.0)

    def test_execute_mode_produces_fills(self):
        me = MatchingEngine(execute=True)
        me.submit(order("a", 0, Side.SELL, 10.0), forward_time=1.0)
        fills = me.submit(order("b", 0, Side.BUY, 10.0), forward_time=2.0)
        assert len(fills) == 1

    def test_no_execute_mode_skips_book(self):
        me = MatchingEngine(execute=False)
        me.submit(order("a", 0, Side.SELL, 10.0), forward_time=1.0)
        fills = me.submit(order("b", 0, Side.BUY, 10.0), forward_time=2.0)
        assert fills == []
        assert me.trade_count == 2


class TestFCFSSequencer:
    def test_forwards_in_arrival_order(self):
        me = MatchingEngine(execute=False)
        seq = FCFSSequencer(me)
        seq.on_trade(order("a", 0), arrival_time=5.0)
        seq.on_trade(order("b", 0), arrival_time=6.0)
        assert me.ordering() == [("a", 0), ("b", 0)]
        assert me.forward_time_of(("a", 0)) == 5.0
        assert seq.trades_sequenced == 2


class TestFeed:
    def test_cadence_and_ids(self):
        feed = MarketDataFeed(FeedConfig(interval=40.0))
        points = list(feed.points_until(0.0, 200.0))
        assert [p.point_id for p in points] == [0, 1, 2, 3, 4]
        assert [p.generation_time for p in points] == [0.0, 40.0, 80.0, 120.0, 160.0]

    def test_generation_time_lookup(self):
        feed = MarketDataFeed()
        feed.next_point(10.0)
        feed.next_point(50.0)
        assert feed.generation_time_of(1) == 50.0

    def test_prices_stay_positive(self):
        feed = MarketDataFeed(FeedConfig(price_volatility=5.0, initial_price=1.0))
        for i in range(500):
            assert feed.next_point(float(i)).price > 0.0

    def test_opportunity_fraction_all(self):
        feed = MarketDataFeed(FeedConfig(opportunity_fraction=1.0))
        assert all(feed.next_point(float(i)).is_opportunity for i in range(50))

    def test_opportunity_fraction_partial(self):
        feed = MarketDataFeed(FeedConfig(opportunity_fraction=0.3, seed=5))
        flags = [feed.next_point(float(i)).is_opportunity for i in range(5000)]
        assert 0.2 < sum(flags) / len(flags) < 0.4

    def test_deterministic(self):
        a = MarketDataFeed(FeedConfig(seed=3))
        b = MarketDataFeed(FeedConfig(seed=3))
        for i in range(20):
            assert a.next_point(float(i)).price == b.next_point(float(i)).price

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FeedConfig(interval=0.0)
        with pytest.raises(ValueError):
            FeedConfig(opportunity_fraction=1.5)


class TestCES:
    def test_generates_on_cadence_until_stop(self):
        engine = EventEngine()
        ces = CentralExchangeServer(engine, feed_config=FeedConfig(interval=40.0))
        received = []
        ces.set_distributor(lambda point: received.append(point.generation_time))
        ces.start(start_time=0.0, stop_time=200.0)
        engine.run(until=1000.0)
        assert received == [0.0, 40.0, 80.0, 120.0, 160.0]

    def test_requires_distributor(self):
        engine = EventEngine()
        ces = CentralExchangeServer(engine)
        with pytest.raises(RuntimeError):
            ces.start()

    def test_start_twice_rejected(self):
        engine = EventEngine()
        ces = CentralExchangeServer(engine)
        ces.set_distributor(lambda p: None)
        ces.start(stop_time=10.0)
        with pytest.raises(RuntimeError):
            ces.start(stop_time=10.0)

    def test_generation_time_accessor(self):
        engine = EventEngine()
        ces = CentralExchangeServer(engine, feed_config=FeedConfig(interval=10.0))
        ces.set_distributor(lambda p: None)
        ces.start(stop_time=35.0)
        engine.run(until=100.0)
        assert ces.generation_time_of(2) == 20.0
        assert ces.points_generated == 4


class TestMessages:
    def test_batch_requires_points(self):
        with pytest.raises(ValueError):
            MarketDataBatch(batch_id=0, points=(), close_time=0.0)

    def test_batch_requires_consecutive_ids(self):
        p0 = MarketDataPoint(0, 0.0)
        p2 = MarketDataPoint(2, 80.0)
        with pytest.raises(ValueError):
            MarketDataBatch(batch_id=0, points=(p0, p2), close_time=80.0)

    def test_batch_accessors(self):
        points = tuple(MarketDataPoint(i, 10.0 * i) for i in range(3))
        batch = MarketDataBatch(batch_id=1, points=points, close_time=20.0)
        assert batch.first_point_id == 0
        assert batch.last_point_id == 2
        assert len(batch) == 3

    def test_trade_key(self):
        assert order("mp3", 7).key == ("mp3", 7)
