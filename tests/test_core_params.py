"""Unit tests for DBOParams."""

import pytest

from repro.core.params import DBOParams


def test_paper_defaults():
    params = DBOParams()
    assert params.delta == 20.0
    assert params.kappa == 0.25
    assert params.tau == 20.0
    assert params.straggler_threshold is None


def test_batch_span():
    assert DBOParams(delta=20.0, kappa=0.25).batch_span == pytest.approx(25.0)
    assert DBOParams(delta=80.0, kappa=0.5).batch_span == pytest.approx(120.0)


def test_pacing_gap_is_delta():
    assert DBOParams(delta=45.0).pacing_gap == 45.0


def test_drain_rate():
    assert DBOParams(kappa=0.25).drain_rate == pytest.approx(1.25)


def test_worst_case_added_latency():
    params = DBOParams(delta=20.0, kappa=0.25, tau=20.0)
    assert params.worst_case_added_latency == pytest.approx(45.0)


def test_with_horizon_keeps_kappa():
    params = DBOParams(delta=20.0, kappa=0.25).with_horizon(45.0)
    assert params.delta == 45.0
    assert params.kappa == 0.25


def test_with_horizon_and_span_sets_kappa():
    params = DBOParams().with_horizon(80.0, batch_span=120.0)
    assert params.delta == 80.0
    assert params.batch_span == pytest.approx(120.0)
    assert params.kappa == pytest.approx(0.5)


def test_with_horizon_rejects_span_at_or_below_delta():
    with pytest.raises(ValueError):
        DBOParams().with_horizon(20.0, batch_span=20.0)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"delta": 0.0},
        {"kappa": 0.0},
        {"kappa": -0.1},
        {"tau": 0.0},
        {"straggler_threshold": 0.0},
    ],
)
def test_validation(kwargs):
    with pytest.raises(ValueError):
        DBOParams(**kwargs)


def test_frozen():
    params = DBOParams()
    with pytest.raises(Exception):
        params.delta = 5.0
