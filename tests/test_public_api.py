"""Public-API integrity: exports resolve, __all__ lists are honest."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.net",
    "repro.exchange",
    "repro.participants",
    "repro.core",
    "repro.baselines",
    "repro.metrics",
    "repro.theory",
    "repro.analysis",
    "repro.experiments",
    "repro.parallel",
    "repro.lint",
    "repro.ordering",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_entries_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} has no __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("package", PACKAGES)
def test_no_duplicate_all_entries(package):
    module = importlib.import_module(package)
    assert len(module.__all__) == len(set(module.__all__))


def test_top_level_quickstart_surface():
    import repro

    for name in [
        "DBODeployment",
        "DBOParams",
        "NetworkSpec",
        "run_scheme",
        "summarize",
        "cloud_specs",
        "evaluate_fairness",
        "RaceResponseTime",
    ]:
        assert hasattr(repro, name)


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(part.isdigit() for part in parts)


def test_cli_module_entry_point():
    from repro.cli import main

    assert callable(main)
