"""Tests for external stream serialization (§4.2.6)."""

import pytest

from repro.baselines.base import NetworkSpec, default_network_specs
from repro.baselines.direct import DirectDeployment
from repro.core.params import DBOParams
from repro.core.system import DBODeployment
from repro.exchange.ces import CentralExchangeServer
from repro.exchange.external import ExternalEvent, ExternalSource, StreamMerger
from repro.exchange.feed import FeedConfig
from repro.metrics.fairness import evaluate_fairness
from repro.net.latency import ConstantLatency, UniformJitterLatency
from repro.net.link import Link
from repro.sim.engine import EventEngine


class TestStreamMerger:
    def test_events_become_sequential_points(self):
        engine = EventEngine()
        ces = CentralExchangeServer(engine, feed_config=FeedConfig(interval=40.0))
        distributed = []
        ces.set_distributor(distributed.append)
        merger = StreamMerger(ces)
        ces.start(stop_time=100.0)
        link = Link(engine, ConstantLatency(500.0), handler=merger.on_event)
        engine.schedule_at(10.0, lambda: link.send(ExternalEvent("news", 0, 10.0, "CPI")))
        engine.run(until=1000.0)
        # Native points 0,1,2 (t=0,40,80) plus the merged event at 510.
        ids = [p.point_id for p in distributed]
        assert ids == sorted(ids)
        merged = merger.merged[0]
        assert merged.payload.payload == "CPI"
        assert merged.generation_time == 510.0
        assert merged.is_opportunity

    def test_injection_requires_distributor(self):
        engine = EventEngine()
        ces = CentralExchangeServer(engine)
        with pytest.raises(RuntimeError):
            ces.inject_external("x")


class TestExternalSource:
    def test_poisson_emission(self):
        engine = EventEngine()
        got = []
        link = Link(engine, ConstantLatency(1.0), handler=lambda e, s, a: got.append(e))
        source = ExternalSource(engine, "news", link, mean_interval=100.0, seed=3)
        source.start(start_time=0.0, stop_time=10_000.0)
        engine.run(until=11_000.0)
        assert 50 < len(got) < 200  # ~100 expected
        assert [e.sequence for e in got] == list(range(len(got)))

    def test_deterministic(self):
        def emit_times(seed):
            engine = EventEngine()
            got = []
            link = Link(engine, ConstantLatency(1.0), handler=lambda e, s, a: got.append(a))
            source = ExternalSource(engine, "n", link, mean_interval=50.0, seed=seed)
            source.start(stop_time=2000.0)
            engine.run(until=3000.0)
            return got

        assert emit_times(4) == emit_times(4)
        assert emit_times(4) != emit_times(5)

    def test_validation(self):
        engine = EventEngine()
        link = Link(engine, ConstantLatency(1.0), handler=lambda *a: None)
        with pytest.raises(ValueError):
            ExternalSource(engine, "n", link, mean_interval=0.0)


class TestSuperStreamFairness:
    """Merged external events get the same LRTF guarantee as native ticks."""

    def run_scheme(self, deployment_cls, **kwargs):
        specs = [
            NetworkSpec(
                forward=UniformJitterLatency(8.0 + 4.0 * i, 4.0, seed=70 + i),
                reverse=UniformJitterLatency(8.0 + 4.0 * i, 4.0, seed=80 + i),
            )
            for i in range(3)
        ]
        deployment = deployment_cls(specs, seed=5, **kwargs)
        # News every ~500 µs over an internet-grade (ms jitter) path.
        deployment.add_external_source(
            "news",
            UniformJitterLatency(2000.0, 1500.0, seed=99),
            mean_interval=500.0,
            seed=9,
        )
        result = deployment.run(duration=20_000.0)
        return deployment, result

    def test_dbo_fair_on_external_races(self):
        deployment, result = self.run_scheme(DBODeployment, params=DBOParams(delta=20.0))
        merged_ids = {p.point_id for p in deployment.stream_merger.merged}
        assert merged_ids, "expected some external events"
        races = result.trades_by_trigger()
        external_races = [races[x] for x in merged_ids if x in races]
        assert external_races
        # Every race on a merged point is ordered perfectly by DBO.
        from repro.metrics.fairness import pairwise_correct

        for trades in external_races:
            for i in range(len(trades)):
                for j in range(i + 1, len(trades)):
                    assert pairwise_correct(trades[i], trades[j]) in (None, True)

    def test_direct_unfair_on_external_races(self):
        deployment, result = self.run_scheme(DirectDeployment)
        merged_ids = {p.point_id for p in deployment.stream_merger.merged}
        from repro.metrics.fairness import pairwise_correct

        verdicts = []
        races = result.trades_by_trigger()
        for x in merged_ids:
            for trades in [races.get(x, [])]:
                for i in range(len(trades)):
                    for j in range(i + 1, len(trades)):
                        v = pairwise_correct(trades[i], trades[j])
                        if v is not None:
                            verdicts.append(v)
        assert verdicts
        assert not all(verdicts)  # the skewed network misorders some


def test_payload_factory():
    engine = EventEngine()
    got = []
    link = Link(engine, ConstantLatency(1.0), handler=lambda e, s, a: got.append(e))
    source = ExternalSource(
        engine, "news", link, mean_interval=100.0, seed=3,
        payload_factory=lambda seq: f"headline-{seq}",
    )
    source.start(stop_time=1000.0)
    engine.run(until=2000.0)
    assert got
    assert got[0].payload == "headline-0"
    assert all(e.payload == f"headline-{e.sequence}" for e in got)
