"""Unit tests for the freeze-fence protocol on the aggregation merge.

When a child's subtree composition changes (it adopts a dead sibling's
orphans), three things must hold at every ancestor on its path to the
master:

* summaries already in flight on the child's FIFO edge (sent before the
  change) must not advance the merge — they describe the old subtree;
* in-flight trade forwards must not advance the child's watermark for
  the same reason;
* the min2 self-exception (a releasing child's own forwards prove its
  progress) is permanently off for that child: its forward stream is
  only monotone *within* one composition.
"""

import pytest

from repro.core.aggregation import HeartbeatAggregator, MasterOB
from repro.core.delivery_clock import DeliveryClockStamp
from repro.exchange.messages import TaggedTrade, TradeOrder


def stamp(point, elapsed=0.0):
    return DeliveryClockStamp(point, elapsed)


def tag(mp_id, seq, point, elapsed=0.0):
    return TaggedTrade(trade=TradeOrder(mp_id=mp_id, trade_seq=seq),
                       clock=stamp(point, elapsed))


class TestFreezeSummaries:
    def test_frozen_child_summaries_ignored_until_fence(self):
        agg = HeartbeatAggregator(["s0", "s1"])
        agg.on_child_summary("s0", stamp(5), 0.0)
        agg.on_child_summary("s1", stamp(7), 0.0)
        agg.freeze_child("s0")
        assert agg.subtree_watermark() is None  # regressed to None
        # A stale in-flight summary arrives before the fence: ignored.
        agg.on_child_summary("s0", stamp(6), 1.0)
        assert agg.subtree_watermark() is None
        agg.on_child_fence("s0", 2.0)
        assert agg.fences_received == 1
        # Post-fence summaries describe the new composition and apply.
        agg.on_child_summary("s0", stamp(4), 3.0)
        assert agg.subtree_watermark() == stamp(4)

    def test_freezes_nest_one_fence_each(self):
        agg = HeartbeatAggregator(["s0", "s1"])
        agg.on_child_summary("s1", stamp(9), 0.0)
        agg.freeze_child("s0")
        agg.freeze_child("s0")
        agg.on_child_fence("s0", 1.0)
        # One fence down, one freeze still pending: still ignored.
        agg.on_child_summary("s0", stamp(3), 2.0)
        assert agg.subtree_watermark() is None
        agg.on_child_fence("s0", 3.0)
        agg.on_child_summary("s0", stamp(3), 4.0)
        assert agg.subtree_watermark() == stamp(3)

    def test_fence_from_retired_child_is_late_message(self):
        agg = HeartbeatAggregator(["s0", "s1"])
        agg.remove_child("s0")
        agg.on_child_fence("s0", 1.0)
        assert agg.late_child_messages == 1
        with pytest.raises(KeyError):
            agg.on_child_fence("s9", 1.0)

    def test_adopted_child_starts_unfrozen(self):
        agg = HeartbeatAggregator(["s0", "s1"])
        agg.freeze_child("s0")
        agg.remove_child("s0")
        agg.add_child("s0")
        agg.on_child_summary("s0", stamp(2), 1.0)
        agg.on_child_summary("s1", stamp(3), 1.0)
        assert agg.subtree_watermark() == stamp(2)


class TestFrozenTradeForwards:
    def test_forward_does_not_advance_watermark_while_frozen(self):
        released = []
        master = MasterOB(["s0", "s1"], sink=lambda t, now: released.append(t))
        master.on_shard_summary("s1", stamp(10), 0.0)
        master.freeze_child("s0")
        # An in-flight pre-change forward: enqueued but proves nothing.
        master.on_shard_trade("s0", tag("mp0", 1, 5), 1.0)
        assert master.subtree_watermark() is None
        assert released == []
        master.on_child_fence("s0", 2.0)
        # Post-fence forwards advance again (plain-minimum regime).
        master.on_shard_trade("s0", tag("mp1", 1, 3), 3.0)
        assert master.subtree_watermark() == stamp(3)


class TestRebuiltChildLosesSelfException:
    def test_single_child_exception_holds_after_freeze(self):
        # Without a freeze, a lone releasing child's forwards release
        # immediately (min2 = TOP self-exception).
        released = []
        master = MasterOB(["s0", "s1"], sink=lambda t, now: released.append(t))
        master.remove_shard("s1")
        master.on_shard_trade("s0", tag("mp0", 1, 5), 1.0)
        assert len(released) == 1

        # With a freeze/fence cycle the exception is off: the same
        # forward is held until the child's *summary* covers it.
        released2 = []
        master2 = MasterOB(["s0", "s1"], sink=lambda t, now: released2.append(t))
        master2.remove_shard("s1")
        master2.freeze_child("s0")
        master2.on_child_fence("s0", 0.0)
        master2.on_shard_trade("s0", tag("mp0", 1, 5), 1.0)
        assert released2 == []
        master2.on_shard_summary("s0", stamp(6), 2.0)
        assert len(released2) == 1

    def test_stale_heap_cannot_flood_past_rerouted_resends(self):
        # The adopter scenario that motivated the protocol: the master
        # holds old high-stamp forwards from the adopter while rerouted
        # orphan resends with *lower* stamps are still on their way.
        order = []
        master = MasterOB(["s0", "s1"],
                          sink=lambda t, now: order.append(t.clock.as_tuple()))
        master.on_shard_summary("s0", stamp(2), 0.0)
        # s1 forwarded stamps 13..15 pre-crash; s0's low watermark holds them.
        for seq, point in enumerate((13, 14, 15), start=1):
            master.on_shard_trade("s1", tag("mp1", seq, point), 0.0)
        assert order == []
        # s0 dies; s1 adopts its participants.
        master.freeze_child("s1")
        master.on_child_fence("s1", 1.0)
        master.remove_shard("s0")
        # The adopter's post-warm-up flush arrives in stamp order,
        # starting *below* the stale heap entries.
        master.on_shard_trade("s1", tag("mp0", 1, 11), 2.0)
        master.on_shard_trade("s1", tag("mp0", 2, 12), 2.0)
        master.on_shard_trade("s1", tag("mp0", 3, 14, 0.5), 2.0)
        master.on_shard_summary("s1", stamp(16), 3.0)
        master.flush(4.0)
        assert order == sorted(order)

    def test_rebuilt_status_cleared_on_remove_and_readd(self):
        master = MasterOB(["s0", "s1"])
        master.freeze_child("s0")
        assert "s0" in master._rebuilt
        master.remove_shard("s0")
        assert "s0" not in master._rebuilt
        master.add_child("s0")
        assert "s0" not in master._rebuilt
