"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scheme == "dbo"
        assert args.scenario == "cloud"
        assert args.participants == 10

    def test_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "quantum"])

    def test_table_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "9"])

    def test_scheme_choices_track_registry(self):
        """Every --scheme/--schemes flag offers exactly the registered schemes.

        Registering a new scheme must surface it on the CLI without
        touching the parser; this test pins that the choices (and help
        text) are *derived* from the registry, not a hand-kept list.
        """
        import argparse

        from repro.experiments.registry import REGISTRY, available_schemes

        parser = build_parser()
        sub = next(
            action
            for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        expected = list(available_schemes())
        scheme_flags = described_flags = 0
        for subparser in set(sub.choices.values()):
            for action in subparser._actions:
                if action.dest in ("scheme", "schemes"):
                    assert list(action.choices) == expected
                    scheme_flags += 1
                    if f"{expected[0]}:" in (action.help or ""):
                        for name in expected:
                            assert REGISTRY.get(name).description in action.help
                        described_flags += 1
        assert scheme_flags >= 4  # run, compare, chaos, chaos-table
        assert described_flags >= 3  # run, compare, chaos carry full help

    def test_prob_scheme_accepts_horizon(self):
        args = build_parser().parse_args(
            ["run", "--scheme", "prob", "--horizon", "4.5"]
        )
        assert args.scheme == "prob"
        assert args.horizon == 4.5
        assert build_parser().parse_args(["run"]).horizon == 6.0


class TestRun:
    def test_run_dbo_prints_digest(self, capsys):
        code = main(
            ["run", "--scheme", "dbo", "--participants", "3",
             "--duration", "3000", "--seed", "4"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "dbo" in out
        assert "fairness" in out
        assert "max-rtt" in out

    def test_run_direct(self, capsys):
        code = main(
            ["run", "--scheme", "direct", "--participants", "3", "--duration", "3000"]
        )
        assert code == 0
        assert "direct" in capsys.readouterr().out

    def test_run_with_race_gap(self, capsys):
        code = main(
            ["run", "--scheme", "dbo", "--participants", "3",
             "--duration", "3000", "--race-gap", "0.1"]
        )
        assert code == 0
        assert "100.00" in capsys.readouterr().out

    def test_run_save_writes_json(self, tmp_path, capsys):
        path = str(tmp_path / "run.json")
        code = main(
            ["run", "--scheme", "dbo", "--participants", "2",
             "--duration", "2000", "--save", path]
        )
        assert code == 0
        with open(path) as handle:
            data = json.load(handle)
        assert data["scheme"] == "dbo"
        assert data["trades"]

    def test_run_sync_assisted(self, capsys):
        code = main(
            ["run", "--scheme", "dbo", "--participants", "2",
             "--duration", "2000", "--sync-c1", "30"]
        )
        assert code == 0
        assert "sync_targets_met" in capsys.readouterr().out

    def test_run_baremetal_scenario(self, capsys):
        code = main(
            ["run", "--scheme", "direct", "--scenario", "baremetal",
             "--participants", "2", "--duration", "3000"]
        )
        assert code == 0


class TestCompare:
    def test_compare_prints_all_schemes(self, capsys):
        code = main(
            ["compare", "--schemes", "direct", "dbo", "--participants", "3",
             "--duration", "3000"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "direct" in out and "dbo" in out


class TestTableFigure:
    def test_table_2(self, capsys):
        code = main(["table", "2", "--duration", "8000"])
        assert code == 0
        assert "Table 2" in capsys.readouterr().out

    def test_figure_11(self, capsys):
        code = main(["figure", "11"])
        assert code == 0
        assert "Figure 11" in capsys.readouterr().out

    def test_figure_7(self, capsys):
        code = main(["figure", "7", "--duration", "40000"])
        assert code == 0
        assert "Figure 7" in capsys.readouterr().out


class TestSweep:
    def test_sweep_delta(self, capsys):
        code = main(
            ["sweep", "--param", "delta", "--values", "10", "45",
             "--participants", "2", "--duration", "2000"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "delta" in out
        assert "10.0" in out and "45.0" in out

    def test_sweep_tau(self, capsys):
        code = main(
            ["sweep", "--param", "tau", "--values", "5", "40",
             "--participants", "2", "--duration", "2000"]
        )
        assert code == 0
        assert "tau" in capsys.readouterr().out


class TestReproduce:
    def test_quick_reproduction_writes_all_artifacts(self, tmp_path, capsys):
        out = str(tmp_path / "repro_out")
        code = main(["reproduce", "--out", out, "--quick"])
        assert code == 0
        import os

        names = sorted(os.listdir(out))
        assert names == [
            "figure10.txt", "figure11.txt", "figure12.txt", "figure13.txt",
            "figure2.txt", "figure7.txt",
            "table2.txt", "table3.txt", "table4.txt",
        ]
        with open(os.path.join(out, "table3.txt")) as handle:
            assert "dbo" in handle.read()


class TestScenarioCoverage:
    def test_multizone_via_cli(self, capsys):
        code = main(
            ["run", "--scheme", "dbo", "--scenario", "multizone",
             "--participants", "2", "--duration", "2000"]
        )
        assert code == 0

    def test_trace_via_cli(self, capsys):
        code = main(
            ["run", "--scheme", "direct", "--scenario", "trace",
             "--participants", "2", "--duration", "2000"]
        )
        assert code == 0


class TestJsonOutput:
    def test_run_json_document(self, capsys):
        code = main(
            ["run", "--scheme", "dbo", "--participants", "2",
             "--duration", "2000", "--seed", "4", "--json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["seed"] == 4
        assert doc["engine"] == "heap"
        assert doc["summary"]["scheme"] == "dbo"
        assert 0.0 <= doc["summary"]["fairness"]["ratio"] <= 1.0
        assert doc["summary"]["latency"]["count"] > 0
        assert len(doc["trade_ordering_digest"]) == 64

    def test_run_json_with_save(self, tmp_path, capsys):
        path = str(tmp_path / "run.json")
        code = main(
            ["run", "--scheme", "direct", "--participants", "2",
             "--duration", "2000", "--json", "--save", path]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["saved_to"] == path
        with open(path) as handle:
            assert json.load(handle)["scheme"] == "direct"

    def test_compare_json_document(self, capsys):
        code = main(
            ["compare", "--schemes", "direct", "dbo", "--participants", "2",
             "--duration", "2000", "--json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert [s["scheme"] for s in doc["summaries"]] == ["direct", "dbo"]
        assert set(doc["trade_ordering_digests"]) == {"direct", "dbo"}

    def test_json_is_deterministic_across_runs(self, capsys):
        argv = ["run", "--scheme", "dbo", "--participants", "2",
                "--duration", "2000", "--seed", "4", "--json"]
        main(argv)
        first = json.loads(capsys.readouterr().out)
        main(argv)
        second = json.loads(capsys.readouterr().out)
        assert first == second

    def test_run_wheel_engine_flag(self, capsys):
        code = main(
            ["run", "--scheme", "dbo", "--participants", "2",
             "--duration", "2000", "--seed", "4", "--engine", "wheel", "--json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["engine"] == "wheel"
        assert doc["summary"]["latency"]["count"] > 0


class TestChaos:
    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.plan == "link-flaky"
        assert args.scheme == "dbo"
        assert args.faults is None

    def test_chaos_rejects_unknown_plan(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--plan", "tsunami"])

    def test_chaos_smoke_plan_passes_fail_on_violation(self, capsys):
        code = main(
            ["chaos", "--plan", "link-flaky", "--participants", "3",
             "--duration", "6000", "--seed", "4", "--fail-on-violation"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fire" in out and "recover" in out
        assert "clean twin" in out and "degradation" in out

    def test_chaos_json_document(self, capsys):
        code = main(
            ["chaos", "--plan", "ob-failover", "--participants", "3",
             "--duration", "6000", "--seed", "4", "--json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        chaos = doc["chaos"]
        assert chaos["safe"] is True
        assert chaos["plan"]["name"] == "ob-failover"
        assert chaos["degradation"]["fault_counters"]["ob_failovers"] == 1.0
        assert len(chaos["clean_digest"]) == 64

    def test_chaos_from_plan_file(self, tmp_path, capsys):
        from repro.faults.plan import FaultSchedule, FaultSpec

        plan = FaultSchedule.of(
            FaultSpec(kind="partition", at=1_500.0, duration=800.0, target="mp0"),
            name="file-plan",
        )
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        code = main(
            ["chaos", "--faults", str(path), "--participants", "3",
             "--duration", "6000", "--seed", "4", "--json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["chaos"]["plan"]["name"] == "file-plan"

    def test_congested_scenario_available(self):
        args = build_parser().parse_args(["run", "--scenario", "congested"])
        assert args.scenario == "congested"


class TestChaosTable:
    ARGS = ["chaos-table", "--schemes", "direct", "dbo", "--plans", "partition",
            "--seeds", "2", "--participants", "3", "--duration", "2500",
            "--seed", "11"]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["chaos-table"])
        assert args.schemes is None  # None = every registered scheme
        assert args.plans is None
        assert args.seeds == 3
        assert args.jobs == 1
        assert args.participants == 4
        assert args.duration == 6_000.0

    def test_rejects_unknown_plan(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos-table", "--plans", "tsunami"])

    def test_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos-table", "--schemes", "quantum"])

    def test_renders_table_and_digest(self, capsys):
        code = main(self.ARGS)
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 5" in out
        assert "direct" in out and "dbo" in out
        assert "table digest: " in out

    def test_json_document(self, capsys):
        code = main(self.ARGS + ["--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert len(doc["cells"]) == 4  # 2 schemes x 1 plan x 2 seeds
        assert len(doc["entries"]) == 2
        assert len(doc["table_digest"]) == 64
        for entry in doc["entries"]:
            low, high = entry["clean_fairness"]["ci"]
            assert 0.0 <= low <= high <= 1.0

    def test_jobs_flag_does_not_change_output(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        serial = capsys.readouterr().out
        assert main(self.ARGS + ["--json", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_na_rows_listed(self, capsys):
        code = main(["chaos-table", "--schemes", "direct", "--plans",
                     "ob-failover", "--seeds", "1", "--participants", "3",
                     "--duration", "2000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "n/a cells" in out
        assert "requires a DBO deployment" in out
