"""Unit tests for the price-time-priority limit order book."""

import pytest

from repro.exchange.messages import Side, TradeOrder
from repro.exchange.order_book import LimitOrderBook


def order(mp, seq, side, price, qty=1):
    return TradeOrder(mp_id=mp, trade_seq=seq, side=side, price=price, quantity=qty)


class TestResting:
    def test_empty_book(self):
        book = LimitOrderBook()
        assert book.best_bid() is None
        assert book.best_ask() is None
        assert book.spread() is None

    def test_resting_bid_and_ask(self):
        book = LimitOrderBook()
        book.submit(order("a", 0, Side.BUY, 9.0))
        book.submit(order("b", 0, Side.SELL, 11.0))
        assert book.best_bid() == 9.0
        assert book.best_ask() == 11.0
        assert book.spread() == pytest.approx(2.0)

    def test_best_bid_is_highest(self):
        book = LimitOrderBook()
        book.submit(order("a", 0, Side.BUY, 9.0))
        book.submit(order("a", 1, Side.BUY, 9.5))
        assert book.best_bid() == 9.5

    def test_best_ask_is_lowest(self):
        book = LimitOrderBook()
        book.submit(order("a", 0, Side.SELL, 11.0))
        book.submit(order("a", 1, Side.SELL, 10.5))
        assert book.best_ask() == 10.5

    def test_contains_resting_order(self):
        book = LimitOrderBook()
        book.submit(order("a", 0, Side.BUY, 9.0))
        assert ("a", 0) in book
        assert ("a", 1) not in book

    def test_resting_quantity(self):
        book = LimitOrderBook()
        book.submit(order("a", 0, Side.BUY, 9.0, qty=7))
        assert book.resting_quantity(("a", 0)) == 7
        assert book.resting_quantity(("x", 9)) == 0


class TestMatching:
    def test_exact_cross(self):
        book = LimitOrderBook()
        book.submit(order("a", 0, Side.SELL, 10.0, qty=5))
        fills = book.submit(order("b", 0, Side.BUY, 10.0, qty=5))
        assert len(fills) == 1
        assert fills[0].price == 10.0
        assert fills[0].quantity == 5
        assert fills[0].buy_key == ("b", 0)
        assert fills[0].sell_key == ("a", 0)
        assert book.best_ask() is None

    def test_partial_fill_rests_remainder(self):
        book = LimitOrderBook()
        book.submit(order("a", 0, Side.SELL, 10.0, qty=3))
        fills = book.submit(order("b", 0, Side.BUY, 10.0, qty=5))
        assert sum(f.quantity for f in fills) == 3
        assert book.best_bid() == 10.0
        assert book.resting_quantity(("b", 0)) == 2

    def test_no_cross_when_prices_do_not_meet(self):
        book = LimitOrderBook()
        book.submit(order("a", 0, Side.SELL, 11.0))
        fills = book.submit(order("b", 0, Side.BUY, 10.0))
        assert fills == []
        assert book.best_bid() == 10.0
        assert book.best_ask() == 11.0

    def test_price_priority(self):
        book = LimitOrderBook()
        book.submit(order("a", 0, Side.SELL, 11.0, qty=1))
        book.submit(order("a", 1, Side.SELL, 10.0, qty=1))
        fills = book.submit(order("b", 0, Side.BUY, 12.0, qty=2))
        assert [f.price for f in fills] == [10.0, 11.0]

    def test_time_priority_within_level(self):
        book = LimitOrderBook()
        book.submit(order("first", 0, Side.SELL, 10.0, qty=1))
        book.submit(order("second", 0, Side.SELL, 10.0, qty=1))
        fills = book.submit(order("b", 0, Side.BUY, 10.0, qty=1))
        assert fills[0].sell_key == ("first", 0)

    def test_execution_at_resting_price(self):
        # Aggressor willing to pay 12 executes at the resting 10.
        book = LimitOrderBook()
        book.submit(order("a", 0, Side.SELL, 10.0))
        fills = book.submit(order("b", 0, Side.BUY, 12.0))
        assert fills[0].price == 10.0

    def test_sell_crossing_bids(self):
        book = LimitOrderBook()
        book.submit(order("a", 0, Side.BUY, 10.0, qty=2))
        book.submit(order("a", 1, Side.BUY, 9.0, qty=2))
        fills = book.submit(order("b", 0, Side.SELL, 9.0, qty=3))
        assert [(f.price, f.quantity) for f in fills] == [(10.0, 2), (9.0, 1)]

    def test_multi_level_walk(self):
        book = LimitOrderBook()
        for i, price in enumerate([10.0, 10.5, 11.0]):
            book.submit(order("a", i, Side.SELL, price, qty=1))
        fills = book.submit(order("b", 0, Side.BUY, 11.0, qty=3))
        assert [f.price for f in fills] == [10.0, 10.5, 11.0]

    def test_match_time_recorded(self):
        book = LimitOrderBook()
        book.submit(order("a", 0, Side.SELL, 10.0))
        fills = book.submit(order("b", 0, Side.BUY, 10.0), match_time=77.0)
        assert fills[0].match_time == 77.0

    def test_executions_accumulate(self):
        book = LimitOrderBook()
        book.submit(order("a", 0, Side.SELL, 10.0))
        book.submit(order("b", 0, Side.BUY, 10.0))
        assert len(book.executions) == 1


class TestCancel:
    def test_cancel_removes_order(self):
        book = LimitOrderBook()
        book.submit(order("a", 0, Side.BUY, 9.0))
        assert book.cancel(("a", 0)) is True
        assert book.best_bid() is None

    def test_cancel_unknown_returns_false(self):
        book = LimitOrderBook()
        assert book.cancel(("a", 0)) is False

    def test_cancelled_order_not_matched(self):
        book = LimitOrderBook()
        book.submit(order("a", 0, Side.SELL, 10.0))
        book.submit(order("a", 1, Side.SELL, 10.0))
        book.cancel(("a", 0))
        fills = book.submit(order("b", 0, Side.BUY, 10.0))
        assert fills[0].sell_key == ("a", 1)

    def test_cancel_middle_of_queue(self):
        book = LimitOrderBook()
        book.submit(order("a", 0, Side.SELL, 10.0))
        book.submit(order("a", 1, Side.SELL, 10.0))
        book.submit(order("a", 2, Side.SELL, 10.0))
        book.cancel(("a", 1))
        fills = book.submit(order("b", 0, Side.BUY, 10.0, qty=2))
        assert [f.sell_key for f in fills] == [("a", 0), ("a", 2)]


class TestDepth:
    def test_depth_sorted_best_first(self):
        book = LimitOrderBook()
        book.submit(order("a", 0, Side.BUY, 9.0, qty=2))
        book.submit(order("a", 1, Side.BUY, 9.5, qty=3))
        levels = book.depth(Side.BUY)
        assert [lvl.price for lvl in levels] == [9.5, 9.0]
        assert [lvl.quantity for lvl in levels] == [3, 2]

    def test_depth_aggregates_level(self):
        book = LimitOrderBook()
        book.submit(order("a", 0, Side.SELL, 10.0, qty=2))
        book.submit(order("b", 0, Side.SELL, 10.0, qty=5))
        levels = book.depth(Side.SELL)
        assert levels[0].quantity == 7
        assert levels[0].order_count == 2


class TestValidation:
    def test_zero_quantity_rejected(self):
        book = LimitOrderBook()
        with pytest.raises(ValueError):
            book.submit(order("a", 0, Side.BUY, 9.0, qty=0))

    def test_duplicate_resting_key_rejected(self):
        book = LimitOrderBook()
        book.submit(order("a", 0, Side.BUY, 9.0))
        with pytest.raises(ValueError):
            book.submit(order("a", 0, Side.BUY, 9.5))

    def test_side_opposite(self):
        assert Side.BUY.opposite() is Side.SELL
        assert Side.SELL.opposite() is Side.BUY
