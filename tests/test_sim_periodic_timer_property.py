"""Property suite for :class:`PeriodicTimer` under batched band delivery.

The calendar engine coalesces same-period timers into bands and fires
them through a single marker per band (one engine pop per due run).
These properties pin that the batching is *unobservable* from the timer
API: for arbitrary (period, phase) sets the banded calendar produces
exactly the tick sequences of the unbatched heap engine, every timer is
drift-free (tick k fires at ``anchor + k * period`` exactly, no
accumulating float error), and no tick is missed or duplicated across
cancel / re-anchor ("pause/resume" in this codebase is cancel plus a
fresh timer, the pattern ``ReleaseBuffer._reschedule_heartbeats`` uses)
or mid-run rescheduling from inside a callback.
"""

from __future__ import annotations

from typing import List, Tuple

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.calendar import CalendarQueueEngine
from repro.sim.engine import HeapEventEngine, make_engine

_settings = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# Arbitrary (period, phase, priority) timer sets.  Periods repeat across
# draws often enough that band coalescing (same period, many phases) is
# exercised constantly.
_timer_sets = st.lists(
    st.tuples(
        st.sampled_from([2.0, 5.0, 7.5, 20.0]),  # period
        st.floats(min_value=0.0, max_value=40.0, allow_nan=False, width=32),  # phase
        st.integers(min_value=0, max_value=3),  # priority
    ),
    min_size=1,
    max_size=12,
)


def _tick_log(engine, timers, horizon: float) -> List[Tuple[float, int]]:
    log: List[Tuple[float, int]] = []
    for index, (period, phase, priority) in enumerate(timers):
        engine.schedule_periodic(
            phase,
            period,
            lambda i=index: log.append((engine.now, i)),
            priority=priority,
        )
    engine.run(until=horizon)
    return log


@_settings
@given(timers=_timer_sets, horizon=st.floats(min_value=10.0, max_value=200.0))
def test_batched_equals_unbatched_tick_sequences(timers, horizon):
    """Calendar bands and per-tick heap entries interleave identically."""
    banded = _tick_log(CalendarQueueEngine(), list(timers), horizon)
    unbatched = _tick_log(HeapEventEngine(), list(timers), horizon)
    assert banded == unbatched


# The seed-faithful reference engine re-schedules each tick *additively*
# (t += period), so for arbitrary anchors its fire times drift from the
# drift-free anchor + k*period grid at the float-ulp level.  On a dyadic
# grid every partial sum is exactly representable, so additive and
# multiplicative cadences coincide bit-for-bit and exact log equality is
# a valid oracle property.
_dyadic_timer_sets = st.lists(
    st.tuples(
        st.sampled_from([2.0, 5.0, 7.5, 20.0]),
        st.integers(min_value=0, max_value=320).map(lambda k: k / 8.0),
        st.integers(min_value=0, max_value=3),
    ),
    min_size=1,
    max_size=12,
)


@_settings
@given(timers=_dyadic_timer_sets, horizon=st.floats(min_value=10.0, max_value=200.0))
def test_batched_matches_seed_reference(timers, horizon):
    """...and both match the seed-faithful push-per-tick reference."""
    banded = _tick_log(CalendarQueueEngine(), list(timers), horizon)
    reference = _tick_log(make_engine("reference"), list(timers), horizon)
    assert banded == reference


@_settings
@given(
    period=st.sampled_from([1.5, 3.0, 20.0]),
    phase=st.floats(min_value=0.0, max_value=10.0, allow_nan=False, width=32),
    horizon=st.floats(min_value=20.0, max_value=500.0),
)
def test_drift_freedom(period, phase, horizon):
    """Tick k fires at exactly anchor + k*period — no accumulated error."""
    engine = CalendarQueueEngine()
    fire_times: List[float] = []
    engine.schedule_periodic(phase, period, lambda: fire_times.append(engine.now))
    engine.run(until=horizon)
    assert fire_times == [phase + k * period for k in range(len(fire_times))]
    # Nothing missed: the next tick is strictly beyond the horizon.
    assert phase + len(fire_times) * period > horizon


@_settings
@given(
    timers=_timer_sets,
    horizon=st.floats(min_value=30.0, max_value=120.0),
    cut=st.floats(min_value=5.0, max_value=100.0),
)
def test_no_missed_or_duplicate_ticks_across_pause_resume(timers, horizon, cut):
    """cancel + re-anchor at the next boundary loses and duplicates nothing.

    "Pausing" a timer mid-run and "resuming" it on its own grid must
    yield the same tick count as never touching it: the fresh timer's
    anchor is the first boundary at or after the cut, exactly how the
    release buffer re-anchors heartbeat timers.
    """
    if cut >= horizon:
        cut = horizon / 2.0
    engine = CalendarQueueEngine()
    log: List[Tuple[float, int]] = []
    handles = []
    for index, (period, phase, priority) in enumerate(timers):
        handles.append(
            (
                engine.schedule_periodic(
                    phase,
                    period,
                    lambda i=index: log.append((engine.now, i)),
                    priority=priority,
                ),
                index,
                period,
                phase,
                priority,
            )
        )
    engine.run(until=cut)
    # Pause everything, then resume each timer on its own grid.
    resume_anchors = {}
    for timer, index, period, phase, priority in handles:
        timer.cancel()
        next_anchor = phase + timer.fires * period
        while next_anchor <= engine.now:
            next_anchor += period  # boundary already passed while paused
        resume_anchors[index] = next_anchor
        engine.schedule_periodic(
            next_anchor,
            period,
            lambda i=index: log.append((engine.now, i)),
            priority=priority,
        )
    engine.run(until=horizon)
    # Per timer: exactly the on-grid boundaries up to the pause, then
    # exactly the on-grid boundaries from the resume anchor — nothing
    # missed inside either active window, nothing doubled.
    assert len(log) == len(set(log))
    for timer, index, period, phase, priority in handles:
        times = [t for (t, i) in log if i == index]
        expected = [phase + k * period for k in range(timer.fires)]
        t = resume_anchors[index]
        while t <= horizon:
            expected.append(t)
            t += period
        assert times == expected


@_settings
@given(
    period=st.sampled_from([2.0, 5.0]),
    n_timers=st.integers(min_value=2, max_value=8),
    horizon=st.floats(min_value=20.0, max_value=80.0),
)
def test_cancel_from_sibling_callback_suppresses_same_tick(period, n_timers, horizon):
    """A band member cancelling a later sibling mid-tick suppresses it.

    All timers share (period, phase, priority), so they occupy one band
    and fire back-to-back; the first member cancels the last on every
    tick.  The heap engine defines the expected interleaving.
    """

    def run(engine) -> List[Tuple[float, int]]:
        log: List[Tuple[float, int]] = []
        timers: List = []

        def first() -> None:
            log.append((engine.now, 0))
            timers[-1].cancel()

        timers.append(engine.schedule_periodic(0.0, period, first))
        for index in range(1, n_timers):
            timers.append(
                engine.schedule_periodic(
                    0.0, period, lambda i=index: log.append((engine.now, i))
                )
            )
        engine.run(until=horizon)
        return log

    assert run(CalendarQueueEngine()) == run(HeapEventEngine())


@_settings
@given(
    period=st.sampled_from([2.0, 7.5]),
    reschedule_at_fire=st.integers(min_value=1, max_value=5),
    new_period=st.sampled_from([1.0, 3.0, 11.0]),
    horizon=st.floats(min_value=40.0, max_value=120.0),
)
def test_reschedule_from_own_callback(period, reschedule_at_fire, new_period, horizon):
    """A timer replacing itself from its own callback ticks cleanly.

    The cadence switches grids at the reschedule point; band membership
    moves between period bands without a missed or doubled tick.
    """

    def run(engine) -> List[float]:
        fire_times: List[float] = []
        box: List = [None]

        def tick() -> None:
            fire_times.append(engine.now)
            if len(fire_times) == reschedule_at_fire:
                box[0].cancel()
                box[0] = engine.schedule_periodic(
                    engine.now + new_period, new_period, tick
                )

        box[0] = engine.schedule_periodic(0.0, period, tick)
        engine.run(until=horizon)
        return fire_times

    calendar_times = run(CalendarQueueEngine())
    assert calendar_times == run(HeapEventEngine())
    # Drift-free on both grids: before the switch on the old grid,
    # after it on the new one.
    switch = calendar_times[reschedule_at_fire - 1]
    for k, t in enumerate(calendar_times[:reschedule_at_fire]):
        assert t == k * period
    for k, t in enumerate(calendar_times[reschedule_at_fire:]):
        assert t == switch + (k + 1) * new_period


@_settings
@given(
    timers=_timer_sets,
    horizon=st.floats(min_value=20.0, max_value=100.0),
    slot_width=st.sampled_from([1.0, 3.0, 20.0, 64.0]),
    wheel_slots=st.sampled_from([2, 8, 64]),
)
def test_band_delivery_is_slot_geometry_independent(
    timers, horizon, slot_width, wheel_slots
):
    """Tick sequences are invariant under the calendar's slot geometry."""
    tuned = _tick_log(
        CalendarQueueEngine(slot_width=slot_width, wheel_slots=wheel_slots),
        list(timers),
        horizon,
    )
    default = _tick_log(CalendarQueueEngine(), list(timers), horizon)
    assert tuned == default


@_settings
@given(timers=_timer_sets, horizon=st.floats(min_value=20.0, max_value=100.0))
def test_fires_counters_match_logged_ticks(timers, horizon):
    """`timer.fires` equals the number of logged callbacks per timer."""
    engine = CalendarQueueEngine()
    log: List[Tuple[float, int]] = []
    handles = []
    for index, (period, phase, priority) in enumerate(timers):
        handles.append(
            engine.schedule_periodic(
                phase,
                period,
                lambda i=index: log.append((engine.now, i)),
                priority=priority,
            )
        )
    engine.run(until=horizon)
    per_timer = [0] * len(handles)
    for _, index in log:
        per_timer[index] += 1
    assert [t.fires for t in handles] == per_timer
