"""Unit tests for the crash-recovery protocols.

Covers the pieces the fault injector drives: RB restart, the RB→OB
ack/retransmission path, OB standby failover, shard failure with master
rerouting, the egress gateway's stall/resume, and the OB-side dedup and
carry-over helpers the recovery paths depend on.
"""

import pytest

from repro.core.delivery_clock import DeliveryClockStamp
from repro.core.gateway import EgressGateway
from repro.core.ordering_buffer import OrderingBuffer
from repro.core.release_buffer import ReleaseBuffer, RetransmitPolicy
from repro.exchange.messages import (
    Heartbeat,
    MarketDataBatch,
    MarketDataPoint,
    Side,
    TaggedTrade,
    TradeOrder,
)
from repro.sim.engine import EventEngine


def batch(batch_id, point_id, close_time=0.0):
    return MarketDataBatch(
        batch_id=batch_id,
        points=(MarketDataPoint(point_id=point_id, generation_time=close_time),),
        close_time=close_time,
    )


def tagged(mp, seq, point, elapsed):
    order = TradeOrder(mp_id=mp, trade_seq=seq, side=Side.BUY, price=1.0)
    return TaggedTrade(trade=order, clock=DeliveryClockStamp(point, elapsed))


def make_rb(policy=None):
    engine = EventEngine()
    rb = ReleaseBuffer(
        engine, "mp0", pacing_gap=20.0, heartbeat_period=20.0, retransmit_policy=policy
    )
    deliveries, trades, heartbeats = [], [], []
    rb.connect_mp(lambda points, t: deliveries.append(t))
    rb.connect_ob(trades.append, heartbeats.append)
    return engine, rb, deliveries, trades, heartbeats


class TestRetransmitPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetransmitPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            RetransmitPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetransmitPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetransmitPolicy(ack_latency=-1.0)

    def test_ack_stops_retransmission(self):
        engine, rb, _, trades, _ = make_rb(RetransmitPolicy(timeout=100.0))
        engine.schedule_at(10.0, lambda: rb.on_batch(batch(0, 0), 0.0, 10.0), priority=0)
        engine.schedule_at(20.0, lambda: rb.on_mp_trade(TradeOrder("mp0", 0)))
        engine.schedule_at(50.0, lambda: rb.on_ack(("mp0", 0)))
        engine.run()
        assert len(trades) == 1  # original send only
        assert rb.acks_received == 1
        assert rb.trades_retransmitted == 0

    def test_unacked_trade_resent_with_backoff(self):
        engine, rb, _, trades, _ = make_rb(
            RetransmitPolicy(timeout=100.0, backoff=2.0, max_retries=2)
        )
        engine.schedule_at(10.0, lambda: rb.on_batch(batch(0, 0), 0.0, 10.0), priority=0)
        engine.schedule_at(20.0, lambda: rb.on_mp_trade(TradeOrder("mp0", 0)))
        engine.run()
        # Sent at 20, retransmitted at 120 and 320, abandoned at 720.
        assert len(trades) == 3
        assert rb.trades_retransmitted == 2
        assert rb.retransmits_abandoned == 1
        # The retransmission carries the ORIGINAL stamp.
        assert trades[0].clock == trades[1].clock == trades[2].clock

    def test_duplicate_ack_counted_once(self):
        engine, rb, _, _, _ = make_rb(RetransmitPolicy(timeout=100.0))
        engine.schedule_at(10.0, lambda: rb.on_batch(batch(0, 0), 0.0, 10.0), priority=0)
        engine.schedule_at(20.0, lambda: rb.on_mp_trade(TradeOrder("mp0", 0)))
        engine.schedule_at(30.0, lambda: rb.on_ack(("mp0", 0)))
        engine.schedule_at(31.0, lambda: rb.on_ack(("mp0", 0)))
        engine.run()
        assert rb.acks_received == 1

    def test_crash_clears_unacked(self):
        engine, rb, _, trades, _ = make_rb(RetransmitPolicy(timeout=100.0))
        engine.schedule_at(10.0, lambda: rb.on_batch(batch(0, 0), 0.0, 10.0), priority=0)
        engine.schedule_at(20.0, lambda: rb.on_mp_trade(TradeOrder("mp0", 0)))
        engine.schedule_at(50.0, rb.crash)
        engine.run()
        assert len(trades) == 1  # no post-crash retransmission
        assert rb.trades_retransmitted == 0


class TestRBRestart:
    def test_restart_requires_crash(self):
        _, rb, _, _, _ = make_rb()
        with pytest.raises(RuntimeError, match="not crashed"):
            rb.restart()

    def test_restart_resumes_delivery_and_reanchors_clock(self):
        engine, rb, deliveries, _, _ = make_rb()
        engine.schedule_at(10.0, lambda: rb.on_batch(batch(0, 3), 0.0, 10.0), priority=0)
        engine.schedule_at(20.0, rb.crash)
        # Dropped during the outage.
        engine.schedule_at(30.0, lambda: rb.on_batch(batch(1, 7), 20.0, 30.0), priority=0)
        engine.schedule_at(40.0, lambda: rb.restart())
        engine.schedule_at(60.0, lambda: rb.on_batch(batch(2, 11), 50.0, 60.0), priority=0)
        engine.run()
        assert deliveries == [10.0, 60.0]
        assert rb.restarts == 1
        assert rb.batches_dropped_crashed == 1
        # Clock re-anchored on the fresh batch, skipping the lost one.
        assert rb.clock.last_point_id == 11

    def test_restart_resumes_heartbeats(self):
        engine, rb, _, _, heartbeats = make_rb()
        rb.start_heartbeats(start_time=0.0)
        engine.schedule_at(45.0, rb.crash)
        engine.schedule_at(105.0, lambda: rb.restart())
        engine.run(until=200.0)
        times = [hb.generated_at for hb in heartbeats]
        assert all(t <= 45.0 or t >= 105.0 for t in times)
        assert any(t >= 105.0 for t in times)


class TestOBRecoveryHelpers:
    def make_ob(self, participants=("a", "b")):
        released = []
        ob = OrderingBuffer(
            participants=list(participants),
            sink=lambda t, now: released.append(t.trade.key),
        )
        return ob, released

    def test_duplicate_tagged_trade_ignored(self):
        ob, released = self.make_ob()
        ob.on_tagged_trade(tagged("a", 0, 0, 5.0), 0.0, 10.0)
        ob.on_tagged_trade(tagged("a", 0, 0, 5.0), 0.0, 11.0)  # retransmit
        assert ob.queue_depth == 1
        assert ob.retransmits_ignored == 1
        ob.on_heartbeat(Heartbeat("b", DeliveryClockStamp(0, 6.0)), 0.0, 12.0)
        assert released == [("a", 0)]

    def test_retransmit_of_released_trade_ignored(self):
        ob, released = self.make_ob()
        ob.on_tagged_trade(tagged("a", 0, 0, 5.0), 0.0, 10.0)
        ob.on_heartbeat(Heartbeat("b", DeliveryClockStamp(0, 6.0)), 0.0, 11.0)
        assert released == [("a", 0)]
        ob.on_tagged_trade(tagged("a", 0, 0, 5.0), 0.0, 12.0)  # late retransmit
        assert released == [("a", 0)]
        assert ob.retransmits_ignored == 1

    def test_duplicate_still_advances_watermark(self):
        # A standby OB that adopted the release log sees the predecessor's
        # released trades again via retransmission; the duplicates must
        # still count as progress proofs for their senders.
        ob, released = self.make_ob()
        ob.adopt_release_log({("b", 0)})
        ob.on_tagged_trade(tagged("a", 1, 0, 4.0), 0.0, 12.0)
        assert released == []
        # b's retransmit of its already-released trade: not re-released,
        # but its stamp (> a's) unblocks a's queued trade.
        ob.on_tagged_trade(tagged("b", 0, 0, 5.0), 0.0, 13.0)
        assert released == [("a", 1)]
        assert ob.retransmits_ignored == 1

    def test_standby_adopts_release_log_and_counters(self):
        ob, released = self.make_ob()
        ob.on_tagged_trade(tagged("a", 0, 0, 5.0), 0.0, 10.0)
        ob.on_heartbeat(Heartbeat("b", DeliveryClockStamp(0, 6.0)), 0.0, 11.0)
        ob.on_tagged_trade(tagged("a", 1, 0, 7.0), 0.0, 12.0)  # still queued
        lost = ob.crash()
        assert lost == 1

        standby, standby_released = self.make_ob()
        standby.adopt_release_log(ob.released_keys)
        standby.carry_over_counters(ob)
        assert standby.trades_received == 2
        assert standby.trades_lost_to_crash == 1
        # The RB retransmits both; only the unreleased one goes through.
        standby.on_tagged_trade(tagged("a", 0, 0, 5.0), 0.0, 20.0)
        standby.on_tagged_trade(tagged("a", 1, 0, 7.0), 0.0, 21.0)
        standby.on_heartbeat(Heartbeat("b", DeliveryClockStamp(0, 8.0)), 0.0, 22.0)
        assert standby_released == [("a", 1)]
        assert standby.retransmits_ignored == 1

    def test_add_participant_idempotent(self):
        ob, _ = self.make_ob(("a", "b"))
        ob.add_participant("c")
        ob.add_participant("c")
        assert set(ob.states) == {"a", "b", "c"}


class TestFlushDuplicateGuard:
    def test_flush_skips_already_released_keys(self):
        # flush() at drain time must not double-release a trade that the
        # normal rule already let through.
        released = []
        ob = OrderingBuffer(
            participants=["a", "b"],
            sink=lambda t, now: released.append(t.trade.key),
        )
        ob.on_tagged_trade(tagged("a", 0, 0, 5.0), 0.0, 10.0)
        ob.on_heartbeat(Heartbeat("b", DeliveryClockStamp(0, 6.0)), 0.0, 11.0)
        ob.on_tagged_trade(tagged("a", 1, 0, 9.0), 0.0, 12.0)
        assert released == [("a", 0)]
        flushed = ob.flush(now=100.0)
        assert flushed == 1
        assert released == [("a", 0), ("a", 1)]
        # A second flush is a no-op.
        assert ob.flush(now=101.0) == 0
        assert released == [("a", 0), ("a", 1)]


class TestGatewayStall:
    def make(self):
        gw = EgressGateway(["a", "b"])
        out = []
        gw.set_sink(lambda message, t: out.append((message.sender, message.payload, t)))
        return gw, out

    def test_stall_holds_resume_drains(self):
        gw, out = self.make()
        stamp = DeliveryClockStamp(0, 1.0)
        later = DeliveryClockStamp(0, 5.0)
        gw.stall()
        gw.on_egress("a", "x", stamp, 10.0)
        gw.on_clock_report("a", later, 11.0)
        gw.on_clock_report("b", later, 12.0)
        assert out == []  # fail-closed: nothing leaks while stalled
        gw.resume(50.0)
        assert [(mp, p) for mp, p, _ in out] == [("a", "x")]
        assert out[0][2] == 50.0
        assert gw.stalls == 1
        assert gw.max_hold == 40.0

    def test_stall_idempotent(self):
        gw, _ = self.make()
        gw.stall()
        gw.stall()
        assert gw.stalls == 1
