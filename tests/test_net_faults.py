"""Tests for the net-layer fault surface: blackhole, bursts, degradation.

Also pins the LossyLink fix: a missing receive handler must fail before
any loss statistic is mutated, so a wiring error leaves counters clean.
"""

import pytest

from repro.net.latency import ConstantLatency, DegradedLatency
from repro.net.link import Link, LossyLink
from repro.sim.engine import EventEngine


def make_link(**kwargs):
    engine = EventEngine()
    got = []
    link = Link(
        engine,
        ConstantLatency(10.0),
        handler=lambda m, s, a: got.append((m, s, a)),
        **kwargs,
    )
    return engine, link, got


class TestBlackhole:
    def test_blackholed_packets_vanish(self):
        engine, link, got = make_link()
        link.send("a", send_time=0.0)
        link.set_blackhole(True)
        link.send("b", send_time=1.0)
        link.set_blackhole(False)
        link.send("c", send_time=2.0)
        engine.run()
        assert [m for m, _, _ in got] == ["a", "c"]
        assert link.packets_blackholed == 1
        assert link.packets_sent == 2  # dropped packets never count as sent

    def test_send_still_reports_would_be_arrival(self):
        _, link, _ = make_link()
        link.set_blackhole(True)
        assert link.send("x", send_time=5.0) == 15.0


class TestLossBurst:
    def test_burst_drops_deterministically(self):
        def run():
            engine, link, got = make_link()
            link.start_loss_burst(0.5, seed=3)
            for i in range(100):
                link.send(i, send_time=float(i))
            engine.run()
            return [m for m, _, _ in got], link.packets_dropped_in_burst

        first_got, first_dropped = run()
        second_got, second_dropped = run()
        assert first_got == second_got
        assert first_dropped == second_dropped
        assert 0 < first_dropped < 100

    def test_stop_loss_burst_heals(self):
        engine, link, got = make_link()
        link.start_loss_burst(1.0, seed=1)
        link.send("dropped", send_time=0.0)
        link.stop_loss_burst()
        link.send("kept", send_time=1.0)
        engine.run()
        assert [m for m, _, _ in got] == ["kept"]

    def test_probability_validated(self):
        _, link, _ = make_link()
        with pytest.raises(ValueError):
            link.start_loss_burst(1.5)


class TestLossyLinkHandlerValidation:
    def test_missing_handler_fails_before_stats(self):
        engine = EventEngine()
        link = LossyLink(
            engine, ConstantLatency(10.0), loss_probability=0.99, seed=1
        )
        # Find an index the loss draw hits, with no handler wired at all.
        with pytest.raises(RuntimeError, match="no receive handler"):
            for i in range(50):
                link.send(i, send_time=float(i))
        assert link.packets_lost == 0  # the fix: stats untouched on error

    def test_burst_swallows_even_the_recovery_path(self):
        engine = EventEngine()
        got, recovered = [], []
        link = LossyLink(
            engine,
            ConstantLatency(10.0),
            loss_probability=0.99,
            recovery_delay=50.0,
            seed=1,
            handler=lambda m, s, a: got.append(m),
            loss_handler=lambda m, s, a: recovered.append(m),
        )
        link.set_blackhole(True)
        for i in range(20):
            link.send(i, send_time=float(i))
        engine.run()
        assert got == [] and recovered == []
        assert link.packets_lost == 0


class TestDegradedLatency:
    def test_passthrough_by_default(self):
        model = DegradedLatency(ConstantLatency(10.0))
        assert model.latency_at(0.0) == 10.0
        assert not model.degraded

    def test_degrade_and_heal(self):
        model = DegradedLatency(ConstantLatency(10.0))
        model.set_degradation(extra=5.0, factor=3.0)
        assert model.latency_at(0.0) == 35.0
        assert model.degraded
        model.clear()
        assert model.latency_at(0.0) == 10.0

    def test_validation(self):
        model = DegradedLatency(ConstantLatency(10.0))
        with pytest.raises(ValueError):
            model.set_degradation(extra=-1.0)
        with pytest.raises(ValueError):
            model.set_degradation(factor=0.0)


class TestLossSurfacedInSummaries:
    def test_packets_lost_counter_in_run_result(self):
        from repro.baselines.base import NetworkSpec
        from repro.experiments.runner import run_scheme

        specs = [
            NetworkSpec(
                forward=ConstantLatency(10.0),
                reverse=ConstantLatency(10.0),
                loss_probability=0.2,
                recovery_delay=100.0,
            )
            for _ in range(3)
        ]
        result = run_scheme("dbo", specs, duration=4_000.0, seed=6)
        assert "packets_lost" in result.counters
        assert result.counters["packets_lost"] > 0

    def test_lossless_run_has_no_loss_counter(self):
        from repro.baselines.base import NetworkSpec
        from repro.experiments.runner import run_scheme

        specs = [
            NetworkSpec(forward=ConstantLatency(10.0), reverse=ConstantLatency(10.0))
            for _ in range(3)
        ]
        result = run_scheme("dbo", specs, duration=4_000.0, seed=6)
        assert "packets_lost" not in result.counters
