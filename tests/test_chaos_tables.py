"""Tests for the "Table 5" chaos degradation matrix (experiments/chaos_tables.py)
and the engine-backed parallel matrix runner underneath it."""

import json

import pytest

from repro.experiments.chaos_tables import build_cells, chaos_table
from repro.parallel import CellSpec, cell_seed, run_cells

SMALL = dict(
    schemes=["direct", "dbo"],
    plans=["link-flaky", "partition"],
    n_seeds=2,
    base_seed=7,
    participants=3,
    duration=3_000.0,
)


@pytest.fixture(scope="module")
def small_table():
    return chaos_table(**SMALL)


class TestBuildCells:
    def test_row_major_shape(self):
        cells = build_cells(["direct", "dbo"], ["link-flaky"], 3, base_seed=1)
        assert len(cells) == 6
        assert [c.scheme for c in cells] == ["direct"] * 3 + ["dbo"] * 3

    def test_seed_substreams_are_per_cell(self):
        cells = build_cells(["direct", "dbo"], ["link-flaky", "partition"], 2)
        seeds = [c.seed for c in cells]
        assert len(set(seeds)) == len(seeds)  # no collisions in practice
        # And fully determined by coordinates, not position:
        assert seeds[0] == cell_seed(0, "direct", "cloud", "link-flaky", 0)

    def test_fba_gets_scaled_batch_interval(self):
        (cell,) = build_cells(["fba"], ["partition"], 1, duration=4_000.0)
        assert cell.scheme_kwargs["batch_interval"] == 500.0

    def test_scheme_kwargs_override(self):
        (cell,) = build_cells(
            ["fba"], ["partition"], 1, scheme_kwargs={"fba": {"batch_interval": 99.0}}
        )
        assert cell.scheme_kwargs["batch_interval"] == 99.0

    def test_no_seeds_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            build_cells(["dbo"], ["partition"], 0)


class TestChaosTable:
    def test_entry_grid_is_complete(self, small_table):
        pairs = [(e.scheme, e.plan) for e in small_table.entries]
        assert pairs == [
            ("direct", "link-flaky"),
            ("direct", "partition"),
            ("dbo", "link-flaky"),
            ("dbo", "partition"),
        ]
        assert all(e.n_ok == 2 for e in small_table.entries)

    def test_wilson_cis_bound_the_ratio(self, small_table):
        for entry in small_table.entries:
            for pooled in (entry.clean_fairness, entry.faulted_fairness):
                low, high = pooled["ci"]
                assert 0.0 <= low <= pooled["ratio"] <= high <= 1.0
            assert entry.p99_inflation_mean >= 1.0

    def test_dbo_survives_what_direct_does_not(self, small_table):
        by_key = {(e.scheme, e.plan): e for e in small_table.entries}
        dbo = by_key[("dbo", "link-flaky")]
        direct = by_key[("direct", "link-flaky")]
        assert dbo.faulted_fairness["ratio"] == 1.0
        assert direct.faulted_fairness["ratio"] < 1.0

    def test_render_and_digest(self, small_table):
        text = small_table.render()
        assert "Table 5" in text
        assert "clean fairness % [95% CI]" in text
        assert "dbo" in text and "direct" in text
        assert len(small_table.digest()) == 64

    def test_to_dict_json_round_trip(self, small_table):
        doc = small_table.to_dict()
        json.dumps(doc)  # must be JSON-serializable as-is
        assert doc["table_digest"] == small_table.digest()
        assert len(doc["cells"]) == 8
        assert len(doc["entries"]) == 4

    def test_unknown_plan_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos plan"):
            chaos_table(schemes=["dbo"], plans=["tsunami"], n_seeds=1)

    def test_inapplicable_combo_becomes_na_entry(self):
        table = chaos_table(
            schemes=["direct"],
            plans=["ob-failover"],
            n_seeds=1,
            participants=3,
            duration=2_000.0,
        )
        (entry,) = table.entries
        assert not entry.applicable
        assert "requires a DBO deployment" in entry.error
        assert "n/a" in table.render()
        json.dumps(table.to_dict())


class TestParallelEqualsSerial:
    def test_jobs2_table_is_byte_identical(self, small_table):
        parallel = chaos_table(**SMALL, jobs=2)
        assert parallel.digest() == small_table.digest()
        assert parallel.to_dict() == small_table.to_dict()

    def test_engine_cells_with_error_cell(self):
        cells = [
            CellSpec(scheme="dbo", seed=5, plan="partition",
                     participants=3, duration=2_000.0),
            # Inapplicable: captured as an error, not a crash.
            CellSpec(scheme="direct", seed=5, plan="rb-outage",
                     participants=3, duration=2_000.0),
            CellSpec(scheme="direct", seed=6, plan=None,
                     participants=3, duration=2_000.0),
        ]
        serial = run_cells(cells, jobs=1)
        parallel = run_cells(cells, jobs=2)
        assert [r.to_dict() for r in serial] == [r.to_dict() for r in parallel]
        assert [r.ok for r in serial] == [True, False, True]
        assert "rb_crash requires a DBO deployment" in serial[1].error
        # Plain (plan=None) cells carry a summary instead of a degradation.
        assert serial[2].summary["scheme"] == "direct"
        assert serial[2].degradation is None
        assert serial[2].clean_pairs[1] > 0

    def test_unknown_scenario_captured_per_cell(self):
        (result,) = run_cells(
            [CellSpec(scheme="dbo", seed=1, scenario="atlantis", duration=1_000.0)]
        )
        assert not result.ok
        assert "unknown scenario" in result.error


class TestSweepParallelBackend:
    def test_parallel_sweep_matches_serial_metrics(self):
        from functools import partial

        from repro.analysis.sweep import sweep
        from repro.experiments.scenarios import cloud_specs
        from repro.metrics.serialization import trade_ordering_digest

        factory = partial(cloud_specs, 2, seed=12)
        kwargs = dict(
            scheme="dbo",
            specs_factory=factory,
            duration=1_500.0,
            grid={"seed": [1, 2]},
            with_bound=True,
        )
        serial = sweep(**kwargs)
        parallel = sweep(**kwargs, jobs=2)
        assert [r.config for r in serial] == [r.config for r in parallel]
        for s_row, p_row in zip(serial, parallel):
            assert trade_ordering_digest(s_row.result) == trade_ordering_digest(p_row.result)
            assert s_row.summary.fairness == p_row.summary.fairness
            assert s_row.summary.latency == p_row.summary.latency
            assert s_row.summary.max_rtt == p_row.summary.max_rtt
            # Parallel rows drop the unpicklable accessor; the bound above
            # was materialized into the summary first.
            assert p_row.result.reverse_latency_at is None

    def test_parallel_sweep_surfaces_point_failure(self):
        from functools import partial

        from repro.analysis.sweep import sweep
        from repro.experiments.scenarios import cloud_specs

        with pytest.raises(RuntimeError, match="sweep point"):
            sweep(
                scheme="dbo",
                specs_factory=partial(cloud_specs, 2, seed=12),
                duration=1_000.0,
                grid={"nonsense_kwarg": [1, 2]},
                jobs=2,
            )
