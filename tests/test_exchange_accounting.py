"""Tests for PnL/position accounting, including conservation properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exchange.accounting import Account, Ledger
from repro.exchange.messages import Execution, Side, TradeOrder
from repro.exchange.order_book import LimitOrderBook


def execution(buyer, seller, price, qty):
    return Execution((buyer, 0), (seller, 0), price, qty, 0.0)


class TestAccount:
    def test_buy_moves_cash_and_inventory(self):
        account = Account("a")
        account.on_buy(10.0, 3)
        assert account.cash == -30.0
        assert account.inventory == 3

    def test_sell_moves_cash_and_inventory(self):
        account = Account("a")
        account.on_sell(10.0, 3)
        assert account.cash == 30.0
        assert account.inventory == -3

    def test_marked_pnl_round_trip_profit(self):
        account = Account("a")
        account.on_buy(10.0, 1)
        account.on_sell(11.0, 1)
        assert account.marked_pnl(reference_price=999.0) == pytest.approx(1.0)

    def test_marked_pnl_open_position(self):
        account = Account("a")
        account.on_buy(10.0, 2)
        assert account.marked_pnl(reference_price=12.0) == pytest.approx(4.0)


class TestLedger:
    def test_double_entry(self):
        ledger = Ledger()
        ledger.apply(execution("b", "s", 10.0, 2))
        assert ledger.account("b").inventory == 2
        assert ledger.account("s").inventory == -2
        assert ledger.account("b").cash == -20.0
        assert ledger.account("s").cash == 20.0

    def test_conservation(self):
        ledger = Ledger()
        ledger.apply_all(
            [execution("a", "b", 10.0, 1), execution("b", "c", 11.0, 3)]
        )
        assert ledger.total_cash() == pytest.approx(0.0)
        assert ledger.total_inventory() == 0
        assert ledger.total_marked_pnl(57.0) == pytest.approx(0.0)

    def test_pnl_table_sorted(self):
        ledger = Ledger()
        ledger.apply(execution("winner", "loser", 10.0, 1))
        rows = ledger.pnl_table(reference_price=12.0)
        assert rows[0][0] == "winner"
        assert rows[0][1] == pytest.approx(2.0)
        assert rows[-1][0] == "loser"

    def test_owners_sorted(self):
        ledger = Ledger()
        ledger.apply(execution("z", "a", 1.0, 1))
        assert ledger.owners == ["a", "z"]


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c"]),
            st.sampled_from(["a", "b", "c"]),
            st.floats(min_value=0.1, max_value=100.0),
            st.integers(1, 10),
        ),
        min_size=1,
        max_size=50,
    ),
    st.floats(min_value=0.0, max_value=200.0),
)
@settings(max_examples=150)
def test_zero_sum_property(fills, mark):
    ledger = Ledger()
    for buyer, seller, price, qty in fills:
        ledger.apply(execution(buyer, seller, price, qty))
    assert ledger.total_inventory() == 0
    assert ledger.total_cash() == pytest.approx(0.0, abs=1e-6)
    assert ledger.total_marked_pnl(mark) == pytest.approx(0.0, abs=1e-6)


def test_ledger_over_real_book():
    """Fills from the order book reconcile: booked volume matches fills."""
    book = LimitOrderBook()
    ledger = Ledger()
    orders = [
        TradeOrder("maker", 0, Side.SELL, price=10.0, quantity=5),
        TradeOrder("taker1", 0, Side.BUY, price=10.0, quantity=2),
        TradeOrder("taker2", 0, Side.BUY, price=10.0, quantity=3),
    ]
    for order in orders:
        book.submit(order)
    ledger.apply_all(book.executions)
    assert ledger.account("maker").inventory == -5
    assert ledger.account("taker1").inventory == 2
    assert ledger.account("taker2").inventory == 3
    assert ledger.fills_applied == len(book.executions)
