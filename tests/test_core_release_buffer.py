"""Unit tests for the release buffer: pacing, tagging, heartbeats."""

import pytest

from repro.core.delivery_clock import DeliveryClockStamp
from repro.core.release_buffer import ReleaseBuffer
from repro.exchange.messages import MarketDataBatch, MarketDataPoint, Side, TradeOrder
from repro.net.latency import ConstantLatency
from repro.sim.clocks import DriftingClock
from repro.sim.engine import EventEngine


def batch(batch_id, first_id, n_points, close_time):
    points = tuple(
        MarketDataPoint(point_id=first_id + i, generation_time=close_time)
        for i in range(n_points)
    )
    return MarketDataBatch(batch_id=batch_id, points=points, close_time=close_time)


def make_rb(engine, delta=20.0, tau=20.0, clock=None, rb_to_mp=None):
    rb = ReleaseBuffer(
        engine,
        mp_id="mp0",
        pacing_gap=delta,
        heartbeat_period=tau,
        local_clock=clock,
        rb_to_mp=rb_to_mp,
    )
    deliveries = []
    rb.connect_mp(lambda points, t: deliveries.append((points, t)))
    trades, heartbeats = [], []
    rb.connect_ob(trades.append, heartbeats.append)
    return rb, deliveries, trades, heartbeats


def arrive(engine, rb, b, at):
    engine.schedule_at(at, lambda: rb.on_batch(b, at - 1.0, at), priority=0)


class TestPacing:
    def test_first_batch_delivered_immediately(self):
        engine = EventEngine()
        rb, deliveries, _, _ = make_rb(engine)
        arrive(engine, rb, batch(0, 0, 1, 0.0), at=10.0)
        engine.run()
        assert len(deliveries) == 1
        assert deliveries[0][1] == 10.0

    def test_gap_enforced_when_batches_bunch(self):
        engine = EventEngine()
        rb, deliveries, _, _ = make_rb(engine, delta=20.0)
        arrive(engine, rb, batch(0, 0, 1, 0.0), at=10.0)
        arrive(engine, rb, batch(1, 1, 1, 0.0), at=12.0)  # 2 µs later
        arrive(engine, rb, batch(2, 2, 1, 0.0), at=14.0)
        engine.run()
        times = [t for _, t in deliveries]
        assert times == [10.0, 30.0, 50.0]

    def test_no_extra_delay_when_spaced(self):
        engine = EventEngine()
        rb, deliveries, _, _ = make_rb(engine, delta=20.0)
        arrive(engine, rb, batch(0, 0, 1, 0.0), at=10.0)
        arrive(engine, rb, batch(1, 1, 1, 0.0), at=50.0)
        engine.run()
        assert [t for _, t in deliveries] == [10.0, 50.0]

    def test_queue_depth_tracked(self):
        engine = EventEngine()
        rb, _, _, _ = make_rb(engine, delta=20.0)
        for i in range(5):
            arrive(engine, rb, batch(i, i, 1, 0.0), at=10.0 + 0.1 * i)
        engine.run()
        assert rb.max_queue_depth >= 4

    def test_pacing_gap_measured_on_local_clock(self):
        # A fast local clock (drift +1%) measures δ sooner in true time.
        engine = EventEngine()
        rb, deliveries, _, _ = make_rb(engine, delta=20.0, clock=DriftingClock(drift_rate=0.01))
        arrive(engine, rb, batch(0, 0, 1, 0.0), at=10.0)
        arrive(engine, rb, batch(1, 1, 1, 0.0), at=11.0)
        engine.run()
        gap_true = deliveries[1][1] - deliveries[0][1]
        assert gap_true == pytest.approx(20.0 / 1.01)

    def test_delivery_times_recorded_per_point(self):
        engine = EventEngine()
        rb, _, _, _ = make_rb(engine)
        arrive(engine, rb, batch(0, 0, 3, 0.0), at=10.0)
        engine.run()
        assert rb.delivery_times == {0: 10.0, 1: 10.0, 2: 10.0}

    def test_validation(self):
        engine = EventEngine()
        with pytest.raises(ValueError):
            ReleaseBuffer(engine, "x", pacing_gap=0.0, heartbeat_period=1.0)
        with pytest.raises(ValueError):
            ReleaseBuffer(engine, "x", pacing_gap=1.0, heartbeat_period=0.0)


class TestDeliveryClockAdvance:
    def test_clock_advances_to_batch_last_point(self):
        engine = EventEngine()
        rb, _, _, _ = make_rb(engine)
        arrive(engine, rb, batch(0, 0, 3, 0.0), at=10.0)
        engine.run()
        assert rb.clock.last_point_id == 2

    def test_recovered_batch_does_not_advance_clock(self):
        engine = EventEngine()
        rb, deliveries, _, _ = make_rb(engine)
        arrive(engine, rb, batch(0, 0, 1, 0.0), at=10.0)
        engine.schedule_at(
            30.0, lambda: rb.on_recovered_batch(batch(1, 1, 1, 0.0), 5.0, 30.0)
        )
        engine.run()
        assert rb.clock.last_point_id == 0          # not advanced
        assert len(deliveries) == 2                  # but MP did get the data
        assert rb.delivery_times[1] == 30.0


class TestTagging:
    def trade(self, seq=0):
        return TradeOrder(mp_id="mp0", trade_seq=seq, side=Side.BUY, price=1.0)

    def test_trade_tagged_with_elapsed_time(self):
        engine = EventEngine()
        rb, _, trades, _ = make_rb(engine)
        arrive(engine, rb, batch(0, 0, 1, 0.0), at=10.0)
        engine.schedule_at(17.5, lambda: rb.on_mp_trade(self.trade()))
        engine.run()
        assert len(trades) == 1
        assert trades[0].clock == DeliveryClockStamp(0, 7.5)
        assert trades[0].tagged_at == 17.5

    def test_tags_monotone_across_trades(self):
        engine = EventEngine()
        rb, _, trades, _ = make_rb(engine)
        arrive(engine, rb, batch(0, 0, 1, 0.0), at=10.0)
        engine.schedule_at(12.0, lambda: rb.on_mp_trade(self.trade(0)))
        engine.schedule_at(15.0, lambda: rb.on_mp_trade(self.trade(1)))
        arrive(engine, rb, batch(1, 1, 1, 0.0), at=40.0)
        engine.schedule_at(41.0, lambda: rb.on_mp_trade(self.trade(2)))
        engine.run()
        stamps = [t.clock for t in trades]
        assert stamps == sorted(stamps)
        assert stamps[2].last_point_id == 1

    def test_trade_before_any_delivery_dropped(self):
        engine = EventEngine()
        rb, _, trades, _ = make_rb(engine)
        engine.schedule_at(5.0, lambda: rb.on_mp_trade(self.trade()))
        engine.run()
        assert trades == []
        assert rb.trades_dropped_untagged == 1

    def test_trade_without_sink_raises(self):
        engine = EventEngine()
        rb = ReleaseBuffer(engine, "mp0", pacing_gap=20.0, heartbeat_period=20.0)
        with pytest.raises(RuntimeError):
            rb.on_mp_trade(self.trade())


class TestHeartbeats:
    def test_heartbeats_on_cadence(self):
        engine = EventEngine()
        rb, _, _, heartbeats = make_rb(engine, tau=20.0)
        rb.start_heartbeats(start_time=0.0)
        arrive(engine, rb, batch(0, 0, 1, 0.0), at=10.0)
        engine.run(until=100.0)
        assert len(heartbeats) == 6  # 0, 20, 40, 60, 80, 100

    def test_pre_start_heartbeats_carry_no_stamp(self):
        engine = EventEngine()
        rb, _, _, heartbeats = make_rb(engine, tau=20.0)
        rb.start_heartbeats(start_time=0.0)
        engine.run(until=30.0)
        assert all(hb.clock is None for hb in heartbeats)

    def test_heartbeat_stamps_monotone(self):
        engine = EventEngine()
        rb, _, _, heartbeats = make_rb(engine, tau=10.0)
        rb.start_heartbeats(start_time=0.0)
        arrive(engine, rb, batch(0, 0, 1, 0.0), at=5.0)
        arrive(engine, rb, batch(1, 1, 1, 0.0), at=45.0)
        engine.run(until=100.0)
        stamps = [hb.clock for hb in heartbeats if hb.clock is not None]
        assert stamps == sorted(stamps)

    def test_heartbeats_need_sink(self):
        engine = EventEngine()
        rb = ReleaseBuffer(engine, "mp0", pacing_gap=20.0, heartbeat_period=20.0)
        with pytest.raises(RuntimeError):
            rb.start_heartbeats()

    def test_double_start_rejected(self):
        engine = EventEngine()
        rb, _, _, _ = make_rb(engine)
        rb.start_heartbeats(start_time=0.0)
        with pytest.raises(RuntimeError):
            rb.start_heartbeats(start_time=5.0)


class TestNonColocatedRB:
    def test_rb_to_mp_latency_delays_mp_delivery_only(self):
        engine = EventEngine()
        rb, deliveries, _, _ = make_rb(engine, rb_to_mp=ConstantLatency(5.0))
        arrive(engine, rb, batch(0, 0, 1, 0.0), at=10.0)
        engine.run()
        # MP sees the data 5 µs after the RB released it...
        assert deliveries[0][1] == 15.0
        # ...but the RB's own clock (and D records) use the release time.
        assert rb.delivery_times[0] == 10.0
