"""Tests for the fault injector: validation, firing, and determinism."""

import pytest

from repro.baselines.base import NetworkSpec
from repro.baselines.direct import DirectDeployment
from repro.core.params import DBOParams
from repro.core.system import DBODeployment
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultSchedule, FaultSpec
from repro.metrics.serialization import trade_ordering_digest
from repro.net.latency import ConstantLatency, DegradedLatency


def specs(n=3):
    return [
        NetworkSpec(forward=ConstantLatency(10.0 + i), reverse=ConstantLatency(10.0 + i))
        for i in range(n)
    ]


def dbo(seed=3, **kwargs):
    return DBODeployment(specs(), params=DBOParams(delta=20.0), seed=seed, **kwargs)


class TestArmValidation:
    def test_unknown_target_rejected(self):
        plan = FaultSchedule.of(
            FaultSpec(kind="rb_crash", at=10.0, target="mp99")
        )
        with pytest.raises(ValueError, match="unknown participant"):
            FaultInjector(plan).arm(dbo())

    def test_rb_crash_needs_dbo(self):
        plan = FaultSchedule.of(FaultSpec(kind="rb_crash", at=10.0, target="mp0"))
        with pytest.raises(ValueError, match="DBO"):
            FaultInjector(plan).arm(DirectDeployment(specs(), seed=3))

    def test_ob_failover_rejected_on_sharded_topology(self):
        plan = FaultSchedule.of(FaultSpec(kind="ob_failover", at=10.0))
        with pytest.raises(ValueError, match="shard_failure"):
            FaultInjector(plan).arm(dbo(n_ob_shards=2))

    def test_shard_failure_needs_shards(self):
        plan = FaultSchedule.of(FaultSpec(kind="shard_failure", at=10.0, target="shard-0"))
        with pytest.raises(ValueError, match="n_ob_shards"):
            FaultInjector(plan).arm(dbo())

    def test_gateway_stall_needs_gateway(self):
        plan = FaultSchedule.of(FaultSpec(kind="gateway_stall", at=10.0, duration=5.0))
        with pytest.raises(ValueError, match="egress_gateway"):
            FaultInjector(plan).arm(dbo())

    def test_cannot_arm_twice(self):
        plan = FaultSchedule.of(FaultSpec(kind="ob_failover", at=10.0))
        injector = FaultInjector(plan)
        injector.arm(dbo())
        with pytest.raises(RuntimeError, match="already armed"):
            injector.arm(dbo())

    def test_cannot_arm_after_build(self):
        plan = FaultSchedule.of(FaultSpec(kind="ob_failover", at=10.0))
        deployment = dbo()
        deployment.run(duration=500.0)
        with pytest.raises(RuntimeError, match="before the deployment builds"):
            FaultInjector(plan).arm(deployment)


class TestFiring:
    def test_burst_loss_fires_and_recovers_on_named_link(self):
        plan = FaultSchedule.of(
            FaultSpec(kind="link_burst_loss", at=1_000.0, duration=2_000.0,
                      target="mp0", magnitude=0.9, seed=5)
        )
        deployment = dbo()
        injector = FaultInjector(plan)
        injector.arm(deployment)
        result = deployment.run(duration=6_000.0)
        assert injector.faults_fired == 1
        assert injector.faults_recovered == 1
        assert [entry["action"] for entry in injector.log] == ["fire", "recover"]
        assert result.counters["packets_dropped_in_burst"] > 0

    def test_partition_blackholes_only_the_target(self):
        plan = FaultSchedule.of(
            FaultSpec(kind="partition", at=1_000.0, duration=1_000.0,
                      target="mp1", direction="forward")
        )
        deployment = dbo()
        injector = FaultInjector(plan)
        injector.arm(deployment)
        deployment.run(duration=4_000.0)
        fwd = {link.name: link for link in deployment._links}
        assert fwd["fwd-mp1"].packets_blackholed > 0
        assert fwd["fwd-mp0"].packets_blackholed == 0
        # Recovered: blackhole switched back off.
        assert not fwd["fwd-mp1"].blackhole

    def test_latency_degradation_wraps_spec_before_build(self):
        plan = FaultSchedule.of(
            FaultSpec(kind="latency_degradation", at=1_000.0, duration=1_000.0,
                      target="mp0", magnitude=500.0, direction="both")
        )
        deployment = dbo()
        injector = FaultInjector(plan)
        injector.arm(deployment)
        assert isinstance(deployment.specs[0].forward, DegradedLatency)
        assert isinstance(deployment.specs[0].reverse, DegradedLatency)
        assert isinstance(deployment.specs[1].forward, ConstantLatency)
        deployment.run(duration=4_000.0)
        # Cleared after recovery.
        assert not deployment.specs[0].forward.degraded

    def test_rb_crash_and_restart(self):
        plan = FaultSchedule.of(
            FaultSpec(kind="rb_crash", at=1_000.0, duration=1_000.0, target="mp2")
        )
        deployment = dbo()
        injector = FaultInjector(plan)
        injector.arm(deployment)
        result = deployment.run(duration=5_000.0)
        assert result.counters["rb_restarts"] == 1
        assert result.counters["batches_dropped_crashed"] > 0
        rb = deployment._rb_by_id["mp2"]
        assert not rb.crashed

    def test_summary_is_deterministic_record(self):
        plan = FaultSchedule.of(
            FaultSpec(kind="partition", at=500.0, duration=250.0, target="mp0"),
            name="p",
        )
        deployment = dbo()
        injector = FaultInjector(plan)
        injector.arm(deployment)
        deployment.run(duration=2_000.0)
        summary = injector.summary()
        assert summary["plan"] == "p"
        assert summary["faults_fired"] == 1
        assert summary["log"][0]["time"] == 500.0
        assert summary["log"][1]["time"] == 750.0


class TestDeterminism:
    PLAN = FaultSchedule.of(
        FaultSpec(kind="link_burst_loss", at=800.0, duration=1_200.0,
                  target="mp0", magnitude=0.4, seed=2),
        FaultSpec(kind="latency_degradation", at=1_500.0, duration=1_000.0,
                  target="mp1", magnitude=120.0),
        FaultSpec(kind="rb_crash", at=2_000.0, duration=800.0, target="mp2"),
    )

    def run_once(self):
        deployment = dbo(seed=11)
        injector = FaultInjector(self.PLAN)
        injector.arm(deployment)
        result = deployment.run(duration=6_000.0)
        return trade_ordering_digest(result), injector.summary(), dict(result.counters)

    def test_same_seed_same_plan_same_outcome(self):
        digest_a, summary_a, counters_a = self.run_once()
        digest_b, summary_b, counters_b = self.run_once()
        assert digest_a == digest_b
        assert summary_a == summary_b
        assert counters_a == counters_b


class TestClockDrift:
    def plan(self, magnitude=0.05, duration=2_000.0):
        return FaultSchedule.of(
            FaultSpec(kind="clock_drift", at=1_000.0, duration=duration,
                      target="mp0", magnitude=magnitude)
        )

    def test_needs_dbo(self):
        with pytest.raises(ValueError, match="DBO"):
            FaultInjector(self.plan()).arm(DirectDeployment(specs(), seed=3))

    def test_fires_and_recovers(self):
        deployment = dbo()
        injector = FaultInjector(self.plan())
        injector.arm(deployment)
        deployment.run(duration=6_000.0)
        assert injector.faults_fired == 1
        assert injector.faults_recovered == 1
        rb = deployment._rb_by_id["mp0"]
        assert rb.clock_skews_applied == 1
        # Recovery restored the original drift rate exactly.
        baseline = dbo()
        baseline.run(duration=6_000.0)
        assert rb.local_clock.drift_rate == pytest.approx(
            baseline._rb_by_id["mp0"].local_clock.drift_rate
        )

    def test_skew_keeps_stamps_monotone(self):
        # The continuity re-anchor is the whole point: even a crawling
        # clock (5x slow) must never regress a heartbeat watermark or
        # release stamp.
        from repro.faults.auditor import InvariantAuditor

        deployment = dbo()
        injector = FaultInjector(self.plan(magnitude=-0.8, duration=3_000.0))
        injector.arm(deployment)
        auditor = InvariantAuditor()
        auditor.attach(deployment)
        deployment.run(duration=8_000.0)
        report = auditor.report()
        assert report.ok
        assert report.safety_violations == []

    def test_compound_skews_stack_and_unwind(self):
        plan = FaultSchedule.of(
            FaultSpec(kind="clock_drift", at=1_000.0, duration=4_000.0,
                      target="mp0", magnitude=0.1),
            FaultSpec(kind="clock_drift", at=2_000.0, duration=1_000.0,
                      target="mp0", magnitude=0.2),
        )
        deployment = dbo()
        injector = FaultInjector(plan)
        injector.arm(deployment)
        deployment.run(duration=8_000.0)
        assert injector.faults_fired == 2
        assert injector.faults_recovered == 2
        rb = deployment._rb_by_id["mp0"]
        assert rb.clock_skews_applied == 2
        # clear_clock_skew restores the remembered base rate even after
        # compounding, so the final drift matches an unfaulted twin.
        baseline = dbo()
        baseline.run(duration=8_000.0)
        assert rb.local_clock.drift_rate == pytest.approx(
            baseline._rb_by_id["mp0"].local_clock.drift_rate
        )


class TestNewKindValidation:
    def test_aggregator_failure_needs_tree(self):
        plan = FaultSchedule.of(
            FaultSpec(kind="aggregator_failure", at=10.0, target="agg1-0")
        )
        with pytest.raises(ValueError, match="aggregation tree"):
            FaultInjector(plan).arm(dbo(n_ob_shards=2))

    def test_ces_hiccup_needs_a_ces(self):
        plan = FaultSchedule.of(
            FaultSpec(kind="ces_hiccup", at=10.0, duration=20.0)
        )
        # The DBO deployment has a CES; arming succeeds.
        FaultInjector(plan).arm(dbo())

    def test_detected_mode_needs_supervision(self):
        plan = FaultSchedule.of(FaultSpec(kind="ob_failover", at=10.0))
        with pytest.raises(ValueError, match="supervise"):
            FaultInjector(plan, recovery="detected").arm(dbo())

    def test_unknown_recovery_mode_rejected(self):
        plan = FaultSchedule.of(FaultSpec(kind="ob_failover", at=10.0))
        with pytest.raises(ValueError, match="recovery"):
            FaultInjector(plan, recovery="wishful")

    def test_summary_records_recovery_mode(self):
        plan = FaultSchedule.of(FaultSpec(kind="ob_failover", at=10.0))
        injector = FaultInjector(plan)
        injector.arm(dbo())
        assert injector.summary()["recovery"] == "scripted"


class TestChannelGlobs:
    def test_glob_matches_all_ack_channels(self):
        plan = FaultSchedule.of(
            FaultSpec(kind="partition", at=100.0, duration=50.0, channel="ack-*")
        )
        from repro.core.release_buffer import RetransmitPolicy
        deployment = dbo(retransmit_policy=RetransmitPolicy())
        injector = FaultInjector(plan)
        injector.arm(deployment)
        deployment.run(duration=1_000.0)
        assert injector.faults_fired == 1
        assert injector.faults_recovered == 1
        # All three participants' ack channels were blackholed.
        dropped = sum(
            channel.link.packets_blackholed
            for channel in deployment.transport
            if channel.name.startswith("ack-")
        )
        assert dropped > 0

    def test_glob_matching_nothing_raises_at_fire_time(self):
        plan = FaultSchedule.of(
            FaultSpec(kind="partition", at=100.0, duration=50.0,
                      channel="nonexistent-*")
        )
        deployment = dbo()
        injector = FaultInjector(plan)
        injector.arm(deployment)
        with pytest.raises(KeyError, match="matched no channels"):
            deployment.run(duration=1_000.0)
