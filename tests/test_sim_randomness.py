"""Unit and property tests for deterministic coordinate-indexed randomness."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.randomness import (
    SubstreamCounter,
    splitmix64,
    stable_bool,
    stable_exponential,
    stable_normal,
    stable_u64,
    stable_uniform,
    stable_unit,
)

MASK64 = (1 << 64) - 1


class TestSplitmix:
    def test_deterministic(self):
        assert splitmix64(12345) == splitmix64(12345)

    def test_stays_in_64_bits(self):
        for x in [0, 1, MASK64, 2**63]:
            assert 0 <= splitmix64(x) <= MASK64

    @given(st.integers(min_value=0, max_value=MASK64))
    def test_single_bit_flips_change_output(self, x):
        # Avalanche sanity: flipping the low bit changes many output bits.
        a = splitmix64(x)
        b = splitmix64(x ^ 1)
        assert bin(a ^ b).count("1") > 10


class TestStableU64:
    def test_deterministic_across_calls(self):
        assert stable_u64(7, 1, 2, 3) == stable_u64(7, 1, 2, 3)

    def test_coordinates_matter(self):
        assert stable_u64(7, 1, 2) != stable_u64(7, 2, 1)

    def test_seed_matters(self):
        assert stable_u64(7, 1) != stable_u64(8, 1)

    def test_negative_coordinates_allowed(self):
        assert stable_u64(7, -1) == stable_u64(7, -1)
        assert stable_u64(7, -1) != stable_u64(7, 1)


class TestStableUnit:
    @given(st.integers(), st.integers(), st.integers())
    def test_in_unit_interval(self, seed, a, b):
        value = stable_unit(seed, a, b)
        assert 0.0 <= value < 1.0

    def test_mean_is_near_half(self):
        values = [stable_unit(99, i) for i in range(20_000)]
        assert abs(sum(values) / len(values) - 0.5) < 0.01


class TestStableUniform:
    @given(st.integers(min_value=0, max_value=10**6))
    def test_respects_bounds(self, coord):
        value = stable_uniform(5.0, 20.0, 3, coord)
        assert 5.0 <= value < 20.0


class TestStableExponential:
    def test_non_negative(self):
        for i in range(1000):
            assert stable_exponential(10.0, 5, i) >= 0.0

    def test_mean_approximation(self):
        values = [stable_exponential(10.0, 5, i) for i in range(50_000)]
        assert sum(values) / len(values) == pytest.approx(10.0, rel=0.05)


class TestStableNormal:
    def test_moments(self):
        values = [stable_normal(3.0, 2.0, 6, i) for i in range(50_000)]
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        assert mean == pytest.approx(3.0, abs=0.05)
        assert math.sqrt(var) == pytest.approx(2.0, rel=0.05)


class TestStableBool:
    def test_probability_zero_never_true(self):
        assert not any(stable_bool(0.0, 1, i) for i in range(1000))

    def test_probability_approximation(self):
        hits = sum(stable_bool(0.2, 1, i) for i in range(50_000))
        assert hits / 50_000 == pytest.approx(0.2, abs=0.01)


class TestSubstreamCounter:
    def test_sequential_values_differ(self):
        stream = SubstreamCounter(1, stream_id=0)
        values = [stream.next_unit() for _ in range(100)]
        assert len(set(values)) == 100

    def test_reproducible(self):
        a = SubstreamCounter(1, stream_id=4)
        b = SubstreamCounter(1, stream_id=4)
        assert [a.next_unit() for _ in range(10)] == [b.next_unit() for _ in range(10)]

    def test_streams_independent(self):
        a = SubstreamCounter(1, stream_id=0)
        b = SubstreamCounter(1, stream_id=1)
        assert [a.next_unit() for _ in range(5)] != [b.next_unit() for _ in range(5)]

    def test_next_int_bounds(self):
        stream = SubstreamCounter(2)
        values = [stream.next_int(3, 7) for _ in range(1000)]
        assert set(values) <= {3, 4, 5, 6, 7}
        assert set(values) == {3, 4, 5, 6, 7}

    def test_next_int_rejects_bad_range(self):
        with pytest.raises(ValueError):
            SubstreamCounter(2).next_int(5, 3)

    def test_next_uniform_bounds(self):
        stream = SubstreamCounter(3)
        for _ in range(100):
            assert 2.0 <= stream.next_uniform(2.0, 4.0) < 4.0

    def test_next_exponential_non_negative(self):
        stream = SubstreamCounter(4)
        assert all(stream.next_exponential(5.0) >= 0.0 for _ in range(100))

    def test_state_tracks_counter(self):
        stream = SubstreamCounter(5, stream_id=2)
        stream.next_unit()
        stream.next_unit()
        assert stream.state == (5, 2, 2)
