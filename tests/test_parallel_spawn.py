"""Spawn-start-method picklability regression (the DBO104 invariant, live).

``fork`` hides pickling bugs: the child inherits the parent's memory, so
a closure that could never be pickled still "works".  ``spawn`` is the
strict mode — everything crossing the boundary must round-trip through
pickle.  These tests prove the declarative cell layer (`CellSpec`,
`run_cell`, the specs thunk) survives it, so the `jobs=N == jobs=1`
digest guarantee holds on platforms where spawn is the only option.
"""

import multiprocessing
import pickle

import pytest

from repro.parallel.matrix import CellSpec, _specs_factory, run_cell, run_cells
from repro.parallel.pool import parallel_map

pytestmark = pytest.mark.skipif(
    "spawn" not in multiprocessing.get_all_start_methods(),
    reason="spawn start method unavailable",
)


def _tiny_cells():
    return [
        CellSpec(
            scheme=scheme,
            seed=7,
            scenario="cloud",
            participants=2,
            duration=1_200.0,
        )
        for scheme in ("direct", "dbo")
    ]


class TestPicklability:
    def test_cellspec_round_trips(self):
        cell = _tiny_cells()[0]
        clone = pickle.loads(pickle.dumps(cell))
        assert clone == cell

    def test_run_cell_is_module_level_picklable(self):
        clone = pickle.loads(pickle.dumps(run_cell))
        assert clone is run_cell

    def test_specs_thunk_round_trips(self):
        # The historical closure thunk could never do this; the
        # module-level callable makes DBO104 safety structural.
        thunk = _specs_factory(_tiny_cells()[0])
        clone = pickle.loads(pickle.dumps(thunk))
        assert clone == thunk
        specs = clone()
        assert len(specs) == 2

    def test_unknown_scenario_still_validates_eagerly(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            _specs_factory(CellSpec(scheme="dbo", seed=1, scenario="lunar"))

    def test_payload_tuple_round_trips(self):
        # Exactly what parallel_map ships to a worker: (fn, index, item).
        payload = (run_cell, 0, _tiny_cells()[0])
        fn, index, item = pickle.loads(pickle.dumps(payload))
        assert fn is run_cell and index == 0 and item == payload[2]


class TestSpawnEquality:
    def test_spawn_jobs2_matches_serial(self):
        cells = _tiny_cells()
        serial = run_cells(cells, jobs=1)
        spawned = run_cells(cells, jobs=2, mp_context="spawn")
        assert all(r.ok for r in serial), [r.error for r in serial]
        assert [r.to_dict() for r in spawned] == [r.to_dict() for r in serial]

    def test_spawn_captures_worker_errors_structurally(self):
        cells = [CellSpec(scheme="nope", seed=1, participants=2, duration=500.0)]
        (result,) = run_cells(cells, jobs=2, mp_context="spawn")
        # jobs=2 with a single cell runs serially; force the pool path via
        # parallel_map directly to cross the real boundary.
        outcomes = parallel_map(run_cell, cells * 2, jobs=2, mp_context="spawn")
        assert not result.ok
        for outcome in outcomes:
            assert not outcome.ok
            assert outcome.exc_type == "UnknownSchemeError"
            assert "nope" in outcome.error
            assert outcome.traceback and "UnknownSchemeError" in outcome.traceback
