"""Tests for the experiment harness: runner, scenarios, tables, figures.

Table/figure regenerations run here with tiny durations — the benchmarks
exercise the paper-scale versions; these tests only pin the plumbing and
the qualitative shape.
"""

import pytest

from repro.experiments.figures import (
    figure2_cloudex_spike,
    figure7_pacing_drain,
    figure10_latency_cdfs,
    figure11_network_trace,
    figure12_scaling,
    figure13_cloudex_vs_dbo,
)
from repro.experiments.runner import (
    SCHEMES,
    build_deployment,
    comparison_table,
    run_scheme,
    summarize,
)
from repro.experiments.scenarios import (
    baremetal_specs,
    cloud_specs,
    figure11_trace,
    sim_trace,
    trace_specs,
)
from repro.experiments.tables import table2_baremetal, table3_cloud, table4_slow_responders


class TestRunner:
    def test_all_schemes_registered(self):
        assert set(SCHEMES) == {"dbo", "direct", "cloudex", "fba", "libra", "prob"}

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            build_deployment("quantum", cloud_specs(2))

    @pytest.mark.parametrize(
        "scheme,kwargs",
        [
            ("dbo", {}),
            ("direct", {}),
            ("cloudex", {}),
            # FBA's default 100 ms auction period exceeds this tiny run.
            ("fba", {"batch_interval": 500.0}),
            ("libra", {}),
            ("prob", {}),
        ],
    )
    def test_every_scheme_runs(self, scheme, kwargs):
        result = run_scheme(scheme, cloud_specs(2), duration=1500.0, drain=5000.0, **kwargs)
        assert result.scheme == scheme
        assert result.trades

    def test_summarize_digest(self):
        result = run_scheme("dbo", cloud_specs(2), duration=1500.0)
        summary = summarize(result)
        assert summary.scheme == "dbo"
        assert 0.0 <= summary.fairness.ratio <= 1.0
        assert summary.latency.count > 0
        assert summary.max_rtt is not None

    def test_comparison_table_layout(self):
        direct = summarize(run_scheme("direct", cloud_specs(2), duration=1500.0))
        dbo = summarize(run_scheme("dbo", cloud_specs(2), duration=1500.0))
        text = comparison_table([direct, dbo], title="T")
        assert "direct" in text
        assert "dbo" in text
        assert "max-rtt" in text


class TestScenarios:
    def test_baremetal_sizes(self):
        assert len(baremetal_specs(2)) == 2

    def test_cloud_sizes(self):
        assert len(cloud_specs(10)) == 10

    def test_cloud_bases_heterogeneous(self):
        specs = cloud_specs(10)
        bases = {spec.forward.base_model.base for spec in specs}
        assert len(bases) == 10

    def test_trace_specs(self):
        specs = trace_specs(4)
        assert len(specs) == 4

    def test_sim_trace_is_compressed(self):
        assert sim_trace().duration < figure11_trace().duration


class TestTables:
    def test_table2_shape(self):
        result = table2_baremetal(duration=15_000.0)
        direct, dbo = result.summaries
        assert dbo.fairness.ratio == 1.0
        assert direct.fairness.ratio < 0.95
        assert dbo.latency.avg > direct.latency.avg
        assert "Table 2" in result.text

    def test_table3_shape(self):
        result = table3_cloud(duration=15_000.0, n_participants=4)
        direct, dbo = result.summaries
        assert dbo.fairness.ratio == 1.0
        assert direct.fairness.ratio < 0.9
        # Latency ordering: direct < max-rtt < dbo.
        assert direct.latency.avg < dbo.max_rtt.avg < dbo.latency.avg

    def test_table4_shape(self):
        result = table4_slow_responders(
            duration=10_000.0, n_participants=4, buckets=((10.0, 15.0), (35.0, 40.0))
        )
        per_bucket = result.extra["per_bucket"]
        assert per_bucket[(10.0, 15.0)]["dbo"] == 1.0
        for bucket, values in per_bucket.items():
            assert values["dbo"] > values["direct"]


class TestFigures:
    def test_figure2_shows_overruns_and_inflation(self):
        fig = figure2_cloudex_spike(duration=25_000.0)
        assert fig.extra["result"].counters["data_overruns"] > 0
        summary = fig.extra["summary"]
        assert summary.fairness.ratio < 1.0

    def test_figure7_drain_slope(self):
        fig = figure7_pacing_drain(duration=40_000.0)
        dbo_series = fig.series["batching+pacing"]
        peak = max(lat for _, lat in dbo_series)
        assert peak < 600.0  # spike 400 + overheads; no runaway queue

    def test_figure10_configs_ordered(self):
        fig = figure10_latency_cdfs(duration=15_000.0, n_participants=3)
        samples = fig.extra["samples"]
        import numpy as np

        p90 = {k: np.percentile(v, 90) for k, v in samples.items() if v}
        assert p90["DBO(20,25)"] < p90["DBO(45,60)"] < p90["DBO(80,120)"]

    def test_figure11_trace_stats(self):
        fig = figure11_network_trace()
        trace = fig.extra["trace"]
        assert trace.max_value() > 3 * trace.min_value()

    def test_figure12_latency_grows_with_participants(self):
        fig = figure12_scaling(participant_counts=(3, 20), duration=4000.0)
        mean = dict(fig.series["dbo_mean"])
        assert mean[20] >= mean[3]

    def test_figure13_cloudex_frontier(self):
        fig = figure13_cloudex_vs_dbo(
            participant_counts=(4,), thresholds=(15.0, 290.0), duration=8000.0
        )
        points = fig.series["CloudEx, 4 MPs"]
        (lat_low, fair_low), (lat_high, fair_high) = points
        assert lat_high > lat_low
        assert fair_high >= fair_low


class TestMultizone:
    def test_zone_skew_present(self):
        from repro.experiments.scenarios import multizone_specs

        specs = multizone_specs(4, n_zones=2, inter_zone_latency=300.0)
        # Odd indices are out-of-zone: base latency dominated by the hop.
        assert specs[1].forward.base > 250.0
        assert specs[0].forward.base < 50.0

    def test_direct_hopeless_dbo_perfect(self):
        from repro.experiments.scenarios import multizone_specs
        from repro.participants.response_time import RaceResponseTime

        specs = multizone_specs(4, n_zones=2, inter_zone_latency=300.0)
        rt = RaceResponseTime(4, gap=1.0, seed=2)
        direct = summarize(
            run_scheme("direct", specs, duration=8000.0, response_time_model=rt),
            with_bound=False,
        )
        dbo = summarize(
            run_scheme("dbo", specs, duration=8000.0, response_time_model=rt),
            with_bound=False,
        )
        # The out-of-zone half can never win under Direct.
        assert direct.fairness.ratio < 0.8
        assert dbo.fairness.ratio == 1.0
        # DBO pays the inter-zone round trip (Theorem 3: wait for the
        # slowest participant), as expected for a regional deployment.
        assert dbo.latency.avg > 600.0

    def test_validation(self):
        from repro.experiments.scenarios import multizone_specs

        with pytest.raises(ValueError):
            multizone_specs(4, n_zones=0)


class TestCongestedScenario:
    def test_shared_bursts_hit_everyone(self):
        from repro.experiments.scenarios import congested_specs

        specs = congested_specs(3)
        mid_burst = 3_000.0 + 100.0  # inside the first burst window
        quiet = 1_000.0
        for spec in specs:
            assert spec.forward.latency_at(mid_burst) > spec.forward.latency_at(quiet) + 100.0

    def test_correlated_congestion_preserves_beyond_horizon_fairness(self):
        """The §6.3.2 story, maximally: fully shared congestion keeps
        inter-delivery gaps equal, so even RT >> δ races stay fair."""
        from repro.experiments.scenarios import congested_specs
        from repro.participants.response_time import RaceResponseTime

        specs = congested_specs(4, burst_height=120.0)
        rt = RaceResponseTime(4, low=30.0, high=38.0, gap=0.3, seed=3)  # > δ = 20
        result = run_scheme(
            "dbo", specs, duration=25_000.0, response_time_model=rt, seed=3
        )
        assert summarize(result, with_bound=False).fairness.ratio > 0.99

    def test_congestion_costs_latency_not_fairness(self):
        from repro.experiments.scenarios import congested_specs

        quiet = run_scheme("dbo", congested_specs(3, burst_height=0.0), duration=15_000.0, seed=3)
        congested = run_scheme("dbo", congested_specs(3, burst_height=120.0), duration=15_000.0, seed=3)
        quiet_s = summarize(quiet, with_bound=False)
        congested_s = summarize(congested, with_bound=False)
        assert congested_s.latency.p99 > quiet_s.latency.p99 + 50.0
        assert congested_s.fairness.ratio >= quiet_s.fairness.ratio - 0.001
