"""Unit tests for the plain-text report renderers."""

from repro.metrics.report import cdf_points, render_cdf, render_series, render_table


class TestRenderTable:
    def test_basic_alignment(self):
        text = render_table(["name", "value"], [["a", 1.0], ["bb", 22.5]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "name" in lines[0]
        assert set(lines[1]) == {"-"}

    def test_title(self):
        text = render_table(["x"], [[1.0]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_format(self):
        text = render_table(["x"], [[1.23456]], float_format="{:.1f}")
        assert "1.2" in text
        assert "1.23" not in text

    def test_non_float_cells_stringified(self):
        text = render_table(["x", "y"], [["label", 7]])
        assert "label" in text
        assert "7" in text

    def test_wide_cells_stretch_column(self):
        text = render_table(["x"], [["averyverylongvalue"]])
        header, rule, row = text.splitlines()
        assert len(header) == len(row)


class TestCdfPoints:
    def test_full_cdf(self):
        points = cdf_points([3.0, 1.0, 2.0])
        assert points == [(1.0, 1 / 3), (2.0, 2 / 3), (3.0, 1.0)]

    def test_quantile_mode(self):
        points = cdf_points(list(range(101)), quantiles=[0.5])
        assert points[0][0] == 50.0
        assert points[0][1] == 0.5

    def test_empty(self):
        assert cdf_points([]) == []


class TestRenderCdf:
    def test_includes_all_series(self):
        text = render_cdf({"fast": [1.0, 2.0], "slow": [10.0, 20.0]})
        assert "fast" in text and "slow" in text
        assert "p50" in text

    def test_empty_series_rendered_as_dash(self):
        text = render_cdf({"none": []})
        assert "-" in text


class TestRenderSeries:
    def test_rows_match_x_values(self):
        text = render_series("n", [10, 20], {"y": [1.0, 2.0]})
        lines = text.splitlines()
        assert "10" in lines[2]
        assert "20" in lines[3]

    def test_short_series_padded_with_dash(self):
        text = render_series("n", [10, 20], {"y": [1.0]})
        assert "-" in text.splitlines()[-1]
