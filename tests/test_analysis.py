"""Tests for the analysis package: statistics and sweeps."""

import math

import pytest

from repro.analysis.stats import (
    MultiSeedResult,
    aggregate_fairness,
    aggregate_latency,
    run_across_seeds,
    summarize_samples,
    wilson_interval,
)
from repro.analysis.sweep import sweep, sweep_table
from repro.core.params import DBOParams
from repro.core.system import DBODeployment
from repro.experiments.scenarios import cloud_specs


class TestWilson:
    def test_degenerate_no_trials(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_contains_point_estimate(self):
        low, high = wilson_interval(90, 100)
        assert low < 0.9 < high

    def test_perfect_ratio_interval_below_one(self):
        low, high = wilson_interval(1000, 1000)
        assert high == 1.0
        assert 0.99 < low < 1.0  # informative even at p = 1

    def test_narrows_with_trials(self):
        low_small, high_small = wilson_interval(9, 10)
        low_big, high_big = wilson_interval(900, 1000)
        assert (high_big - low_big) < (high_small - low_small)

    def test_confidence_levels(self):
        l95, h95 = wilson_interval(50, 100, confidence=0.95)
        l99, h99 = wilson_interval(50, 100, confidence=0.99)
        assert (h99 - l99) > (h95 - l95)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(1, 10, confidence=0.8)


class TestSummarizeSamples:
    def test_basic(self):
        summary = summarize_samples([1.0, 2.0, 3.0])
        assert summary.count == 3
        assert summary.mean == 2.0
        assert summary.ci_low < 2.0 < summary.ci_high

    def test_single_sample_zero_width(self):
        summary = summarize_samples([5.0])
        assert summary.ci_low == summary.ci_high == 5.0

    def test_empty_is_nan(self):
        assert math.isnan(summarize_samples([]).mean)

    def test_str(self):
        assert "n=2" in str(summarize_samples([1.0, 2.0]))


class TestMultiSeed:
    @pytest.fixture(scope="class")
    def multi(self):
        def run(seed):
            deployment = DBODeployment(cloud_specs(3, seed=12), seed=seed)
            return deployment.run(duration=2000.0)

        return run_across_seeds(run, seeds=[1, 2, 3])

    def test_run_across_seeds_shapes(self, multi):
        assert multi.seeds == [1, 2, 3]
        assert len(multi.results) == 3

    def test_aggregate_fairness_pools_pairs(self, multi):
        agg = aggregate_fairness(multi)
        assert agg["ratio"] == 1.0
        assert agg["pairs"] > 100
        low, high = agg["ci"]
        assert low < 1.0 <= high
        assert set(agg["per_seed"]) == {1, 2, 3}

    def test_aggregate_latency(self, multi):
        summary = aggregate_latency(multi, statistic="avg")
        assert summary.count == 3
        assert summary.mean > 0

    def test_aggregate_latency_unknown_statistic(self, multi):
        with pytest.raises(ValueError):
            aggregate_latency(multi, statistic="p42")

    def test_misaligned_rejected(self, multi):
        with pytest.raises(ValueError):
            MultiSeedResult(seeds=[1], results=multi.results)

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            run_across_seeds(lambda s: None, seeds=[])


class TestSweep:
    def test_grid_product(self):
        rows = sweep(
            scheme="dbo",
            specs_factory=lambda: cloud_specs(2, seed=12),
            duration=1500.0,
            grid={
                "params": [DBOParams(delta=10.0), DBOParams(delta=45.0)],
                "seed": [1, 2],
            },
        )
        assert len(rows) == 4
        deltas = {row.config["params"].delta for row in rows}
        assert deltas == {10.0, 45.0}

    def test_sweep_table_renders(self):
        rows = sweep(
            scheme="direct",
            specs_factory=lambda: cloud_specs(2, seed=12),
            duration=1500.0,
            grid={"seed": [1, 2]},
        )
        text = sweep_table(rows, title="demo")
        assert "demo" in text
        assert "fairness %" in text

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            sweep("dbo", lambda: cloud_specs(2), 1000.0, grid={})

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            sweep_table([])
