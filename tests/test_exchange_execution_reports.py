"""Tests for execution-report publication (feed derived from the ME)."""

import pytest

from repro.baselines.base import default_network_specs
from repro.core.system import DBODeployment
from repro.exchange.ces import CentralExchangeServer
from repro.exchange.feed import FeedConfig
from repro.exchange.messages import Execution, Side, TradeOrder
from repro.participants.strategies import MarketMaker, SpeedRacer
from repro.sim.engine import EventEngine


class TestCESWiring:
    def test_requires_execute_trades(self):
        engine = EventEngine()
        with pytest.raises(ValueError):
            CentralExchangeServer(engine, publish_executions=True)

    def test_execution_becomes_informational_point(self):
        engine = EventEngine()
        ces = CentralExchangeServer(
            engine, execute_trades=True, publish_executions=True
        )
        distributed = []
        ces.set_distributor(distributed.append)
        ces.start(stop_time=50.0)
        engine.run(until=60.0)
        base_points = len(distributed)
        # Cross two orders through the ME: one execution, one report.
        ces.matching_engine.submit(
            TradeOrder("a", 0, Side.SELL, price=10.0, quantity=1), forward_time=70.0
        )
        engine.schedule_at(70.0, lambda: ces.matching_engine.submit(
            TradeOrder("b", 0, Side.BUY, price=10.0, quantity=1), forward_time=70.0
        ))
        engine.run(until=80.0)
        reports = [p for p in distributed[base_points:] if isinstance(p.payload, Execution)]
        assert len(reports) == 1
        assert not reports[0].is_opportunity
        assert reports[0].payload.price == 10.0
        assert ces.execution_reports_published == 1


class TestDeploymentLoop:
    def test_reports_flow_through_dbo_without_runaway(self):
        """Maker + racers with live matching and execution reports: the
        trade→report→trade loop stays bounded because reports are
        informational (SpeedRacer ignores non-opportunity points)."""

        def strategies(index):
            return MarketMaker(quantity=4) if index == 0 else SpeedRacer(seed=index)

        deployment = DBODeployment(
            default_network_specs(4, seed=5),
            feed_config=FeedConfig(interval=40.0, price_volatility=0.0),
            strategy_factory=strategies,
            execute_trades=True,
            publish_executions=True,
            seed=3,
        )
        result = deployment.run(duration=4000.0)
        assert deployment.ces.execution_reports_published > 0
        # Reports are real data points: delivered to every participant.
        report_ids = {
            p.point_id
            for p in deployment.ces.feed.generated
            if isinstance(p.payload, Execution)
        }
        assert report_ids
        for mp_id in deployment.mp_ids:
            delivered = set(result.delivery_times[mp_id])
            assert report_ids <= delivered
        # Bounded: one report per execution, no feedback explosion.
        executions = len(deployment.ces.matching_engine.book.executions)
        assert deployment.ces.execution_reports_published == executions
