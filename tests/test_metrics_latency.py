"""Unit tests for latency metrics and the Max-RTT bound (Theorem 3)."""

import math

import pytest

from repro.metrics.latency import (
    LatencyStats,
    data_delivery_latencies,
    latency_stats,
    max_rtt_bound_per_trade,
    max_rtt_stats,
    trade_latencies,
)
from repro.metrics.records import RunResult, TradeRecord


def record(mp, seq, trigger, rt, s=0.0, f=None, pos=None):
    return TradeRecord(
        mp_id=mp,
        trade_seq=seq,
        trigger_point=trigger,
        response_time=rt,
        submission_time=s,
        forward_time=f,
        position=pos,
    )


def simple_run(trades, reverse=None, raw=None, sends=None):
    return RunResult(
        scheme="test",
        trades=trades,
        generation_times={0: 0.0, 1: 40.0},
        network_send_times=sends or {0: 0.0, 1: 40.0},
        raw_arrivals=raw or {"a": {0: 10.0, 1: 50.0}, "b": {0: 12.0, 1: 52.0}},
        delivery_times={"a": {0: 10.0, 1: 50.0}, "b": {0: 12.0, 1: 52.0}},
        reverse_latency_at=reverse,
    )


class TestTradeLatencies:
    def test_eq8(self):
        # F - G(x) - RT = 30 - 0 - 5 = 25.
        trades = [record("a", 0, 0, 5.0, f=30.0, pos=0)]
        assert trade_latencies(simple_run(trades)) == [25.0]

    def test_incomplete_skipped(self):
        trades = [record("a", 0, 0, 5.0)]
        assert trade_latencies(simple_run(trades)) == []

    def test_unknown_trigger_skipped(self):
        trades = [record("a", 0, 99, 5.0, f=30.0, pos=0)]
        assert trade_latencies(simple_run(trades)) == []


class TestLatencyStats:
    def test_from_samples(self):
        stats = LatencyStats.from_samples([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.avg == 2.5
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.p50 == pytest.approx(2.5)

    def test_empty_is_nan(self):
        stats = LatencyStats.from_samples([])
        assert stats.count == 0
        assert math.isnan(stats.avg)

    def test_percentile_ordering(self):
        stats = LatencyStats.from_samples(list(range(1000)))
        assert stats.p50 <= stats.p99 <= stats.p999 <= stats.p9999

    def test_row_format(self):
        row = LatencyStats.from_samples([1.0]).row()
        assert len(row.split()) == 4

    def test_latency_stats_of_run(self):
        trades = [
            record("a", 0, 0, 5.0, f=30.0, pos=0),
            record("b", 0, 0, 5.0, f=45.0, pos=1),
        ]
        stats = latency_stats(simple_run(trades))
        assert stats.avg == pytest.approx((25.0 + 40.0) / 2)


class TestMaxRTTBound:
    def test_hand_computed_bound(self):
        # Forward latencies: a: 10, b: 12 (send time 0); reverse constant
        # 8 for a, 9 for b → RTTs 18 and 21 → bound = 21.
        def reverse(mp_id, t):
            return 8.0 if mp_id == "a" else 9.0

        trades = [record("a", 0, 0, 5.0, f=30.0, pos=0)]
        bounds = max_rtt_bound_per_trade(simple_run(trades, reverse=reverse))
        assert bounds == [21.0]

    def test_bound_uses_response_time_for_reverse_query(self):
        seen = []

        def reverse(mp_id, t):
            seen.append((mp_id, t))
            return 1.0

        trades = [record("a", 0, 0, 5.0, f=30.0, pos=0)]
        max_rtt_bound_per_trade(simple_run(trades, reverse=reverse))
        # Hypothetical responses at raw_delivery + RT: 10+5 and 12+5.
        assert ("a", 15.0) in seen
        assert ("b", 17.0) in seen

    def test_missing_arrival_skips_trade(self):
        def reverse(mp_id, t):
            return 1.0

        trades = [record("a", 0, 1, 5.0, f=60.0, pos=0)]
        raw = {"a": {1: 50.0}, "b": {}}  # b never saw point 1
        bounds = max_rtt_bound_per_trade(
            simple_run(trades, reverse=reverse, raw=raw)
        )
        assert bounds == []

    def test_requires_reverse_accessor(self):
        trades = [record("a", 0, 0, 5.0, f=30.0, pos=0)]
        with pytest.raises(ValueError):
            max_rtt_bound_per_trade(simple_run(trades))

    def test_stats_wrapper(self):
        def reverse(mp_id, t):
            return 8.0

        trades = [record("a", 0, 0, 5.0, f=30.0, pos=0)]
        stats = max_rtt_stats(simple_run(trades, reverse=reverse))
        assert stats.count == 1
        assert stats.avg == pytest.approx(20.0)


class TestDataDeliveryLatencies:
    def test_per_point_delivery_latency(self):
        run = simple_run([])
        lat = data_delivery_latencies(run, "a")
        assert lat == {0: 10.0, 1: 10.0}

    def test_unknown_participant_empty(self):
        run = simple_run([])
        assert data_delivery_latencies(run, "zzz") == {}
