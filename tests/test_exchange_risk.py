"""Tests for the pre-trade risk gate."""

import pytest

from repro.exchange.matching import MatchingEngine
from repro.exchange.messages import Execution, Side, TradeOrder
from repro.exchange.risk import Rejection, RiskGate, RiskLimits


def order(mp, seq, side=Side.BUY, qty=1, price=10.0):
    return TradeOrder(mp_id=mp, trade_seq=seq, side=side, quantity=qty, price=price)


def make_gate(**limit_kwargs):
    passed = []
    gate = RiskGate(
        RiskLimits(**limit_kwargs),
        sink=lambda o, t: passed.append((o.key, t)),
    )
    return gate, passed


class TestLimitsValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_order_size": 0},
            {"max_position": -1},
            {"max_orders_per_window": 0},
            {"rate_window": 0.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            RiskLimits(**kwargs)


class TestOrderSize:
    def test_oversized_rejected(self):
        gate, passed = make_gate(max_order_size=10)
        assert not gate.submit(order("a", 0, qty=11), 1.0)
        assert gate.submit(order("a", 1, qty=10), 2.0)
        assert [k for k, _ in passed] == [("a", 1)]
        assert gate.rejection_counts() == {"max_order_size": 1}

    def test_disabled_check_passes_everything(self):
        gate, passed = make_gate()
        assert gate.submit(order("a", 0, qty=10**6), 1.0)


class TestPosition:
    def test_position_limit_blocks_accumulation(self):
        gate, passed = make_gate(max_position=5)
        # Build position via executions (fills).
        gate.on_execution(Execution(("a", 0), ("b", 0), 10.0, 4, 1.0))
        assert gate.position_of("a") == 4
        assert gate.position_of("b") == -4
        # a buying 2 more would reach |6| > 5: rejected.
        assert not gate.submit(order("a", 1, Side.BUY, qty=2), 2.0)
        # a selling reduces exposure: allowed.
        assert gate.submit(order("a", 2, Side.SELL, qty=2), 3.0)
        # b is short 4: selling 2 more would hit |-6|: rejected.
        assert not gate.submit(order("b", 1, Side.SELL, qty=2), 4.0)

    def test_conservative_full_fill_assumption(self):
        gate, _ = make_gate(max_position=3)
        assert not gate.submit(order("a", 0, qty=4), 1.0)


class TestRate:
    def test_rolling_window(self):
        gate, passed = make_gate(max_orders_per_window=2, rate_window=100.0)
        assert gate.submit(order("a", 0), 0.0)
        assert gate.submit(order("a", 1), 10.0)
        assert not gate.submit(order("a", 2), 20.0)   # 3rd in 100 µs
        assert gate.submit(order("a", 3), 150.0)      # window slid
        assert gate.rejection_counts() == {"order_rate": 1}

    def test_rate_is_per_participant(self):
        gate, _ = make_gate(max_orders_per_window=1, rate_window=100.0)
        assert gate.submit(order("a", 0), 0.0)
        assert gate.submit(order("b", 0), 1.0)
        assert not gate.submit(order("a", 1), 2.0)


class TestOverridesAndWiring:
    def test_per_participant_overrides(self):
        gate, _ = make_gate(max_order_size=10)
        gate.set_limits("whale", RiskLimits(max_order_size=1000))
        assert gate.submit(order("whale", 0, qty=500), 1.0)
        assert not gate.submit(order("minnow", 0, qty=500), 2.0)

    def test_requires_sink(self):
        gate = RiskGate(RiskLimits())
        with pytest.raises(RuntimeError):
            gate.submit(order("a", 0), 1.0)

    def test_order_preserving_with_matching_engine(self):
        me = MatchingEngine(execute=False)
        gate = RiskGate(RiskLimits(max_order_size=5), sink=me.submit)
        gate.submit(order("a", 0, qty=1), 1.0)
        gate.submit(order("b", 0, qty=99), 2.0)   # rejected
        gate.submit(order("c", 0, qty=2), 3.0)
        assert me.ordering() == [("a", 0), ("c", 0)]

    def test_rejection_record(self):
        gate, _ = make_gate(max_order_size=1)
        gate.submit(order("a", 0, qty=2), 7.0)
        rejection = gate.rejections[0]
        assert isinstance(rejection, Rejection)
        assert rejection.reason == "max_order_size"
        assert rejection.at == 7.0
