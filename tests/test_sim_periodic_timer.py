"""PeriodicTimer: drift-free cadence, cancellation, hot-path safety."""

import pytest

from repro.sim.engine import (
    BucketWheelEngine,
    HeapEventEngine,
    ReferenceHeapEngine,
    SimulationError,
)


class TestDriftFreeCadence:
    def test_fire_times_are_multiplicative_not_additive(self):
        # anchor + n*period, NOT an accumulated sum: 0.1 is not exactly
        # representable, so additive accumulation drifts within ~30 ticks.
        engine = HeapEventEngine()
        times = []
        timer = engine.schedule_periodic(0.0, 0.1, lambda: times.append(engine.now))
        engine.run(until=100.0)
        assert len(times) == 1001
        for n, t in enumerate(times):
            assert t == n * 0.1  # exact float equality: anchor + fires*period
        assert timer.fires == 1001

    def test_next_fire_time_property(self):
        engine = HeapEventEngine()
        seen = []
        timer = engine.schedule_periodic(5.0, 2.0, lambda: seen.append(timer.next_fire_time))
        assert timer.next_fire_time == 5.0
        engine.run(until=9.0)
        # During the callback the timer has already advanced its count.
        assert seen == [7.0, 9.0, 11.0]

    def test_anchor_offset_grid(self):
        engine = HeapEventEngine()
        times = []
        engine.schedule_periodic(3.5, 10.0, lambda: times.append(engine.now))
        engine.run(until=40.0)
        assert times == [3.5, 13.5, 23.5, 33.5]

    def test_reference_engine_accumulates(self):
        # The seed-emulating reference engine reschedules additively; with
        # an exactly representable period the cadence still matches.
        engine = ReferenceHeapEngine()
        times = []
        engine.schedule_periodic(0.0, 2.0, lambda: times.append(engine.now))
        engine.run(until=10.0)
        assert times == [0.0, 2.0, 4.0, 6.0, 8.0, 10.0]


class TestCancellation:
    @pytest.mark.parametrize("engine_cls", [HeapEventEngine, BucketWheelEngine])
    def test_cancel_mid_period_stops_future_fires(self, engine_cls):
        engine = engine_cls()
        fired = []
        timer = engine.schedule_periodic(1.0, 1.0, lambda: fired.append(engine.now))
        engine.run(until=3.5)
        assert fired == [1.0, 2.0, 3.0]
        timer.cancel()
        assert timer.cancelled and not timer.active
        engine.run(until=10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_cancel_from_own_callback(self):
        engine = HeapEventEngine()
        fired = []

        def tick():
            fired.append(engine.now)
            if len(fired) == 3:
                timer.cancel()

        timer = engine.schedule_periodic(1.0, 1.0, tick)
        engine.run(until=20.0)
        assert fired == [1.0, 2.0, 3.0]
        assert engine.live_pending_events == 0

    def test_cancel_via_engine_cancel(self):
        engine = HeapEventEngine()
        fired = []
        timer = engine.schedule_periodic(1.0, 1.0, lambda: fired.append(engine.now))
        engine.cancel(timer)
        engine.run(until=5.0)
        assert fired == []
        assert engine.live_pending_events == 0

    def test_double_cancel_is_idempotent(self):
        engine = HeapEventEngine()
        timer = engine.schedule_periodic(1.0, 1.0, lambda: None)
        timer.cancel()
        timer.cancel()
        assert engine.live_pending_events == 0


class TestHotPathSafety:
    def test_callback_scheduling_earlier_event_preserves_order(self):
        # The fast in-place reschedule (heapreplace) must not steal the
        # heap top from an earlier event the callback just scheduled.
        engine = HeapEventEngine()
        order = []

        def tick():
            order.append(("tick", engine.now))
            engine.schedule_at(engine.now, lambda: order.append(("inner", engine.now)), priority=0)

        engine.schedule_periodic(1.0, 1.0, tick, priority=3)
        engine.run(until=2.0)
        assert order == [("tick", 1.0), ("inner", 1.0), ("tick", 2.0), ("inner", 2.0)]

    def test_two_interleaved_timers(self):
        engine = HeapEventEngine()
        log = []
        engine.schedule_periodic(0.0, 3.0, lambda: log.append(("a", engine.now)))
        engine.schedule_periodic(1.0, 3.0, lambda: log.append(("b", engine.now)))
        engine.run(until=7.0)
        assert log == [
            ("a", 0.0), ("b", 1.0), ("a", 3.0), ("b", 4.0), ("a", 6.0), ("b", 7.0),
        ]

    def test_live_count_stable_across_reschedules(self):
        engine = HeapEventEngine()
        engine.schedule_periodic(1.0, 1.0, lambda: None)
        engine.run(until=100.0)
        # One live entry (the timer's next occurrence), no leak.
        assert engine.live_pending_events == 1
        assert engine.pending_events == 1

    def test_invalid_period_rejected(self):
        engine = HeapEventEngine()
        with pytest.raises(SimulationError):
            engine.schedule_periodic(0.0, 0.0, lambda: None)
        with pytest.raises(SimulationError):
            engine.schedule_periodic(0.0, -1.0, lambda: None)


class TestWheelEquivalence:
    def test_wheel_matches_heap_timer_semantics(self):
        logs = {}
        for cls in (HeapEventEngine, BucketWheelEngine):
            engine = cls()
            log = []
            engine.schedule_periodic(0.5, 7.3, lambda log=log, e=engine: log.append(e.now))
            engine.run(until=200.0)
            logs[cls.__name__] = log
        assert logs["HeapEventEngine"] == logs["BucketWheelEngine"]
