"""The scheme registry: resolution, errors, and Runtime threading."""

import pytest

from repro.baselines.base import BaseDeployment, default_network_specs
from repro.experiments.registry import (
    REGISTRY,
    SchemeBuilder,
    SchemeRegistry,
    UnknownSchemeError,
    available_schemes,
    get_builder,
)
from repro.experiments.runner import SCHEMES, build_deployment
from repro.sim.engine import BucketWheelEngine, HeapEventEngine
from repro.sim.runtime import Runtime

ALL_SCHEMES = {"dbo", "direct", "cloudex", "fba", "libra", "prob"}


class TestRegistryContents:
    def test_six_builtin_schemes_registered(self):
        assert set(available_schemes()) == ALL_SCHEMES
        for name in ALL_SCHEMES:
            builder = get_builder(name)
            assert isinstance(builder, SchemeBuilder)
            assert builder.name == name
            assert builder.factory.scheme_name == name

    def test_legacy_schemes_view_matches_registry(self):
        assert set(SCHEMES) == ALL_SCHEMES
        for name, factory in SCHEMES.items():
            assert REGISTRY.get(name).factory is factory

    def test_unknown_scheme_raises_typed_error(self):
        with pytest.raises(UnknownSchemeError) as excinfo:
            get_builder("quantum")
        assert excinfo.value.name == "quantum"
        assert excinfo.value.known == tuple(sorted(ALL_SCHEMES))
        assert "quantum" in str(excinfo.value)

    def test_unknown_scheme_is_a_value_error(self):
        # Historical except-ValueError call sites must keep working.
        with pytest.raises(ValueError):
            build_deployment("quantum", default_network_specs(2))

    def test_duplicate_registration_rejected(self):
        registry = SchemeRegistry()
        registry.register("x", BaseDeployment)
        with pytest.raises(ValueError):
            registry.register("x", BaseDeployment)
        registry.register("x", BaseDeployment, replace=True)  # explicit ok

    def test_container_protocol(self):
        assert "dbo" in REGISTRY
        assert "quantum" not in REGISTRY
        assert list(REGISTRY) == sorted(ALL_SCHEMES)
        assert len(REGISTRY) == 6


class TestBuilderConstruction:
    @pytest.mark.parametrize("name", sorted(ALL_SCHEMES))
    def test_every_scheme_constructs_through_builder(self, name):
        specs = default_network_specs(2, seed=3)
        deployment = get_builder(name).build(specs, seed=3)
        assert isinstance(deployment, BaseDeployment)
        assert deployment.scheme_name == name
        assert deployment.seed == 3
        assert isinstance(deployment.runtime, Runtime)
        assert deployment.engine is deployment.runtime.engine

    def test_engine_kind_reaches_the_deployment(self):
        specs = default_network_specs(2, seed=3)
        deployment = get_builder("direct").build(specs, engine="wheel")
        assert isinstance(deployment.engine, BucketWheelEngine)

    def test_explicit_runtime_wins_over_seed(self):
        specs = default_network_specs(2, seed=3)
        runtime = Runtime(seed=11)
        deployment = get_builder("direct").build(specs, runtime=runtime, seed=99)
        assert deployment.runtime is runtime
        assert deployment.seed == 11

    def test_build_deployment_routes_through_registry(self):
        specs = default_network_specs(2, seed=3)
        deployment = build_deployment("dbo", specs, seed=5)
        assert deployment.scheme_name == "dbo"
        assert isinstance(deployment.engine, HeapEventEngine)

    def test_builder_runs_end_to_end(self):
        specs = default_network_specs(2, seed=3)
        result = get_builder("direct").build(specs, seed=3).run(duration=1500.0)
        assert result.scheme == "direct"
        assert result.trades
