"""Cross-engine differential harness: every engine, one observable history.

The repository ships three production event engines — the binary heap
(``heap``), the bucket wheel (``wheel``) and the slotted calendar queue
(``calendar``) — plus the seed-faithful :class:`ReferenceHeapEngine`
oracle.  Their contract is *observational equivalence*: for any workload
they must execute callbacks in exactly the same order, so every digest,
audit report and channel odometer is byte-identical across engines.

This harness pins that contract from three directions:

* **Scheme grid** — every scheme x scenario cell is run on all engines
  and the trade-ordering digest, invariant-audit report and per-channel
  odometers are compared against the heap baseline.
* **Fault grid** — chaos plans (crash, failover, partition, duplication)
  are replayed per engine through the full injector/auditor pipeline;
  clean and faulted digests must both match.
* **Hypothesis oracle** — randomly generated schedule / cancel /
  periodic-timer programs are executed side by side on the
  :class:`ReferenceHeapEngine` oracle and each production engine, and
  the complete fire logs (time, priority, label) must coincide — this
  covers FIFO-within-timestamp, priority ordering and tombstone
  semantics far beyond what the fixed scenarios reach.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.base import default_network_specs
from repro.experiments.chaos import make_plan, run_chaos
from repro.experiments.runner import build_deployment
from repro.faults.auditor import InvariantAuditor
from repro.metrics.serialization import trade_ordering_digest
from repro.sim.engine import ENGINE_FACTORIES, ReferenceHeapEngine, make_engine

# The production engines under differential test.  ``heap`` is the
# baseline the others are compared against.
BASELINE = "heap"
CANDIDATES = ["wheel", "calendar"]
ALL_ENGINES = [BASELINE] + CANDIDATES

SCHEMES = ["direct", "cloudex", "fba", "dbo", "libra", "prob"]

# (name, n_participants, seed, duration): one tiny cell and one with
# enough participants to exercise multi-way watermark races.
SCENARIOS = [
    ("small", 4, 5, 5_000.0),
    ("medium", 8, 11, 4_000.0),
]

# FBA's default 100 ms auction never fires inside these horizons.
SCHEME_KWARGS = {"fba": {"batch_interval": 1_000.0}}

# Chaos plans exercised per engine (dbo, N=4).  The selection covers a
# crash+recovery, a failover, a network partition and at-least-once
# duplication — the fault kinds with distinct scheduling footprints.
FAULT_PLANS = ["ob-crash", "ob-failover", "partition", "dup-delivery"]

_FAULT_DURATION = 6_000.0

# ---------------------------------------------------------------------------
# Cell runner (cached: each cell is executed once per engine)
# ---------------------------------------------------------------------------

_CELL_CACHE: Dict[Tuple, Tuple[str, dict, dict]] = {}


def run_cell(scheme: str, n: int, seed: int, duration: float, engine: str):
    """Run one clean cell; returns (digest, audit dict, channel odometers)."""
    key = (scheme, n, seed, duration, engine)
    cached = _CELL_CACHE.get(key)
    if cached is not None:
        return cached
    specs = default_network_specs(n, seed=seed)
    deployment = build_deployment(
        scheme, specs, seed=seed, engine=engine, **SCHEME_KWARGS.get(scheme, {})
    )
    auditor = InvariantAuditor()
    auditor.attach(deployment)
    result = deployment.run(duration=duration)
    out = (
        trade_ordering_digest(result),
        auditor.report().to_dict(),
        {name: dict(c) for name, c in sorted(result.channels.items())},
    )
    _CELL_CACHE[key] = out
    return out


_FAULT_CACHE: Dict[Tuple, Tuple[str, str, dict, dict]] = {}


def run_fault_cell(plan_name: str, engine: str):
    """Run one chaos cell; returns (clean digest, faulted digest, audits)."""
    key = (plan_name, engine)
    cached = _FAULT_CACHE.get(key)
    if cached is not None:
        return cached
    plan = make_plan(plan_name, _FAULT_DURATION, 4)
    report = run_chaos(
        "dbo",
        lambda: default_network_specs(4, seed=7),
        _FAULT_DURATION,
        plan,
        seed=7,
        engine=engine,
    )
    assert report.safe, report.faulted_audit.counts()
    out = (
        report.clean_digest,
        report.faulted_digest,
        report.clean_audit.to_dict(),
        report.faulted_audit.to_dict(),
    )
    _FAULT_CACHE[key] = out
    return out


# ---------------------------------------------------------------------------
# Scheme grid
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine", CANDIDATES)
@pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s[0])
@pytest.mark.parametrize("scheme", SCHEMES)
def test_scheme_cell_matches_heap(scheme, scenario, engine):
    _, n, seed, duration = scenario
    base_digest, base_audit, base_channels = run_cell(
        scheme, n, seed, duration, BASELINE
    )
    digest, audit, channels = run_cell(scheme, n, seed, duration, engine)
    assert digest == base_digest
    assert audit == base_audit
    assert channels == base_channels


def test_grid_covers_every_scheme():
    from repro.experiments.registry import REGISTRY

    assert set(SCHEMES) == set(REGISTRY.names())


def test_all_production_engines_registered():
    for engine in ALL_ENGINES:
        assert engine in ENGINE_FACTORIES


# ---------------------------------------------------------------------------
# Fault grid
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine", CANDIDATES)
@pytest.mark.parametrize("plan_name", FAULT_PLANS)
def test_fault_cell_matches_heap(plan_name, engine):
    base = run_fault_cell(plan_name, BASELINE)
    candidate = run_fault_cell(plan_name, engine)
    assert candidate[0] == base[0], "clean-twin digest diverged"
    assert candidate[1] == base[1], "faulted digest diverged"
    assert candidate[2] == base[2], "clean audit diverged"
    assert candidate[3] == base[3], "faulted audit diverged"


# ---------------------------------------------------------------------------
# Hypothesis oracle: random engine programs vs ReferenceHeapEngine
# ---------------------------------------------------------------------------
#
# A program is a list of operations executed at increasing issue times.
# Each operation either schedules a one-shot event, cancels a previously
# scheduled live event, registers a periodic timer, or cancels a timer.
# The observable history is the fire log: (time, priority, label) per
# callback invocation, in execution order.  The reference engine is the
# oracle; every production engine must reproduce its log exactly.

_one_shot = st.tuples(
    st.floats(min_value=0.0, max_value=200.0, allow_nan=False, width=32),
    st.integers(min_value=-2, max_value=5),
)

# Timer anchors and periods are drawn on a dyadic grid: the reference
# oracle re-schedules ticks additively (seed-faithful), so only exactly
# representable partial sums make exact-fire-time comparison valid.
# (Production workloads hash trade *ordering*, which is ulp-robust; the
# oracle compares raw fire logs, which is stricter.)
_periodic = st.tuples(
    st.integers(min_value=0, max_value=480).map(lambda k: k / 8.0),
    st.integers(min_value=4, max_value=320).map(lambda k: k / 8.0),
    st.integers(min_value=-2, max_value=5),
)


@st.composite
def engine_programs(draw):
    """A mixed schedule/cancel program plus a run horizon."""
    ops: List[Tuple] = []
    n_ops = draw(st.integers(min_value=1, max_value=25))
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["event", "event", "event", "timer", "cancel", "cancel_timer"]))
        if kind == "event":
            time, priority = draw(_one_shot)
            ops.append(("event", time, priority))
        elif kind == "timer":
            anchor, period, priority = draw(_periodic)
            ops.append(("timer", anchor, period, priority))
        elif kind == "cancel":
            ops.append(("cancel", draw(st.integers(min_value=0, max_value=30))))
        else:
            ops.append(("cancel_timer", draw(st.integers(min_value=0, max_value=10))))
    horizon = draw(st.floats(min_value=10.0, max_value=150.0, allow_nan=False, width=32))
    return ops, horizon


def _execute(engine_kind: str, ops, horizon: float) -> List[Tuple[float, int, str]]:
    """Run a program on one engine; returns the complete fire log."""
    if engine_kind == "reference":
        engine = ReferenceHeapEngine()
    elif engine_kind == "calendar-fine":
        # Deliberately tiny slots: exercises cursor advance / overflow
        # spill on every program, not just long-horizon ones.
        from repro.sim.calendar import CalendarQueueEngine

        engine = CalendarQueueEngine(slot_width=3.0, wheel_slots=8)
    else:
        engine = make_engine(engine_kind)
    log: List[Tuple[float, int, str]] = []
    handles: List = []
    timers: List = []

    def make_cb(label: str, priority: int):
        def cb() -> None:
            log.append((engine.now, priority, label))

        return cb

    for index, op in enumerate(ops):
        if op[0] == "event":
            _, time, priority = op
            handles.append(
                engine.schedule_at(time, make_cb(f"e{index}", priority), priority=priority)
            )
        elif op[0] == "timer":
            _, anchor, period, priority = op
            timers.append(
                engine.schedule_periodic(
                    anchor, period, make_cb(f"t{index}", priority), priority=priority
                )
            )
        elif op[0] == "cancel":
            _, pick = op
            live = [h for h in handles if not h.dead]
            if live:
                engine.cancel(live[pick % len(live)])
        else:
            _, pick = op
            live = [t for t in timers if t.active]
            if live:
                live[pick % len(live)].cancel()
    engine.run(until=horizon)
    return log


_oracle_settings = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.mark.parametrize("engine_kind", CANDIDATES + ["calendar-fine"])
class TestEngineOracle:
    @_oracle_settings
    @given(program=engine_programs())
    def test_fire_log_matches_reference(self, engine_kind, program):
        ops, horizon = program
        assert _execute(engine_kind, ops, horizon) == _execute(
            "reference", ops, horizon
        )


@_oracle_settings
@given(program=engine_programs())
def test_heap_fire_log_matches_reference(program):
    ops, horizon = program
    assert _execute(BASELINE, ops, horizon) == _execute("reference", ops, horizon)


@_oracle_settings
@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False, width=32),
        min_size=1,
        max_size=30,
    ),
    priority=st.integers(min_value=-2, max_value=5),
)
@pytest.mark.parametrize("engine_kind", CANDIDATES)
def test_fifo_within_timestamp(engine_kind, times, priority):
    """Same (time, priority) events fire in scheduling order on every engine."""

    def run(kind: str) -> List[str]:
        engine = make_engine(kind)
        log: List[str] = []
        for index, time in enumerate(times):
            engine.schedule_at(
                time, lambda i=index: log.append(f"e{i}"), priority=priority
            )
        engine.run()
        return log

    assert run(engine_kind) == run("reference")


@_oracle_settings
@given(program=engine_programs(), cut=st.floats(min_value=5.0, max_value=80.0))
@pytest.mark.parametrize("engine_kind", CANDIDATES)
def test_split_run_equals_single_run(engine_kind, program, cut):
    """run(until=a); run(until=b) is indistinguishable from run(until=b)."""
    ops, horizon = program
    if cut >= horizon:
        cut = horizon / 2.0

    def run_split(kind: str) -> List[Tuple[float, int, str]]:
        if kind == "reference":
            engine = ReferenceHeapEngine()
        else:
            engine = make_engine(kind)
        log: List[Tuple[float, int, str]] = []
        for index, op in enumerate(ops):
            if op[0] == "event":
                _, time, priority = op
                engine.schedule_at(
                    time,
                    lambda p=priority, l=f"e{index}": log.append((engine.now, p, l)),
                    priority=priority,
                )
            elif op[0] == "timer":
                _, anchor, period, priority = op
                engine.schedule_periodic(
                    anchor,
                    period,
                    lambda p=priority, l=f"t{index}": log.append((engine.now, p, l)),
                    priority=priority,
                )
        engine.run(until=cut)
        engine.run(until=horizon)
        return log

    assert run_split(engine_kind) == run_split("reference")


@_oracle_settings
@given(
    n_events=st.integers(min_value=1, max_value=20),
    time=st.floats(min_value=1.0, max_value=40.0, allow_nan=False, width=32),
)
@pytest.mark.parametrize("engine_kind", CANDIDATES)
def test_cancel_from_callback_is_honoured(engine_kind, n_events, time):
    """A callback cancelling a later same-time event suppresses it."""

    def run(kind: str) -> List[int]:
        engine = make_engine(kind)
        log: List[int] = []
        handles: List = []

        def killer() -> None:
            log.append(-1)
            for h in handles:
                engine.cancel(h)

        engine.schedule_at(time, killer, priority=0)
        for index in range(n_events):
            handles.append(
                engine.schedule_at(time, lambda i=index: log.append(i), priority=1)
            )
        engine.run()
        return log

    assert run(engine_kind) == run("reference") == [-1]
