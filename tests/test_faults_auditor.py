"""Tests for the online invariant auditor."""

import pytest

from repro.baselines.base import NetworkSpec
from repro.baselines.direct import DirectDeployment
from repro.core.delivery_clock import DeliveryClockStamp
from repro.core.params import DBOParams
from repro.core.system import DBODeployment
from repro.exchange.messages import Heartbeat, Side, TaggedTrade, TradeOrder
from repro.faults.auditor import AuditReport, InvariantAuditor, Violation
from repro.net.latency import ConstantLatency


def tagged(mp, seq, point, elapsed):
    order = TradeOrder(mp_id=mp, trade_seq=seq, side=Side.BUY, price=1.0)
    return TaggedTrade(trade=order, clock=DeliveryClockStamp(point, elapsed))


def specs(n=3):
    return [
        NetworkSpec(forward=ConstantLatency(10.0 + i), reverse=ConstantLatency(10.0 + i))
        for i in range(n)
    ]


class TestReportShape:
    def test_ok_distinguishes_safety_from_liveness(self):
        report = AuditReport(scheme="dbo")
        assert report.ok
        report.violations.append(Violation("progress_stall", 1.0, "queued"))
        assert report.ok  # liveness only
        assert report.liveness_events and not report.safety_violations
        report.violations.append(Violation("release_order", 2.0, "regressed"))
        assert not report.ok

    def test_to_dict_counts(self):
        report = AuditReport(scheme="dbo")
        report.violations.extend(
            [Violation("release_order", 1.0, "a"), Violation("release_order", 2.0, "b")]
        )
        doc = report.to_dict()
        assert doc["counts"] == {"release_order": 2}
        assert doc["ok"] is False
        assert len(doc["violations"]) == 2


class TestDetection:
    """Feed synthetic observations straight into the observer hooks."""

    def test_out_of_order_release_flagged(self):
        auditor = InvariantAuditor(stall_timeout=None)
        auditor._on_release(tagged("a", 0, 5, 10.0), 100.0)
        auditor._on_release(tagged("b", 0, 3, 2.0), 101.0)  # older stamp
        report = auditor.report()
        assert [v.kind for v in report.violations] == ["release_order"]
        assert report.violations[0].mp_id == "b"

    def test_monotone_releases_pass(self):
        auditor = InvariantAuditor(stall_timeout=None)
        auditor._on_release(tagged("a", 0, 1, 5.0), 100.0)
        auditor._on_release(tagged("b", 0, 1, 5.0), 101.0)  # equal is fine
        auditor._on_release(tagged("a", 1, 2, 0.0), 102.0)
        assert auditor.report().ok

    def test_duplicate_release_flagged(self):
        auditor = InvariantAuditor(stall_timeout=None)
        auditor._on_release(tagged("a", 0, 1, 5.0), 100.0)
        auditor._on_release(tagged("a", 0, 2, 6.0), 101.0)  # same key again
        assert [v.kind for v in auditor.report().violations] == ["duplicate_release"]

    def test_watermark_regression_flagged_per_participant(self):
        auditor = InvariantAuditor(stall_timeout=None)
        auditor._on_heartbeat(Heartbeat("a", DeliveryClockStamp(4, 1.0)), 50.0)
        auditor._on_heartbeat(Heartbeat("b", DeliveryClockStamp(2, 1.0)), 51.0)
        auditor._on_heartbeat(Heartbeat("a", DeliveryClockStamp(3, 9.0)), 52.0)  # back
        report = auditor.report()
        assert [v.kind for v in report.violations] == ["watermark_regression"]
        assert report.violations[0].mp_id == "a"

    def test_clockless_heartbeats_skipped(self):
        auditor = InvariantAuditor(stall_timeout=None)
        auditor._on_heartbeat(Heartbeat("a", None), 50.0)
        assert auditor.heartbeats_checked == 0


class TestAttachment:
    def test_cannot_attach_twice(self):
        auditor = InvariantAuditor()
        auditor.attach(DBODeployment(specs(), params=DBOParams(), seed=2))
        with pytest.raises(RuntimeError, match="already attached"):
            auditor.attach(DBODeployment(specs(), params=DBOParams(), seed=2))

    def test_cannot_attach_after_build(self):
        deployment = DBODeployment(specs(), params=DBOParams(), seed=2)
        deployment.run(duration=500.0)
        with pytest.raises(RuntimeError, match="before the deployment builds"):
            InvariantAuditor().attach(deployment)


class TestLiveRuns:
    def test_clean_dbo_run_audits_clean(self):
        deployment = DBODeployment(specs(), params=DBOParams(delta=20.0), seed=7)
        auditor = InvariantAuditor()
        auditor.attach(deployment)
        deployment.run(duration=5_000.0)
        report = auditor.report()
        assert report.ok
        assert report.violations == []
        assert report.releases_checked > 0
        assert report.heartbeats_checked > 0
        assert report.scheme == "dbo"

    def test_clean_direct_run_uses_matching_engine_fallback(self):
        deployment = DirectDeployment(specs(), seed=7)
        auditor = InvariantAuditor()
        auditor.attach(deployment)
        deployment.run(duration=5_000.0)
        report = auditor.report()
        assert report.ok
        assert report.releases_checked > 0
        assert report.heartbeats_checked == 0  # no delivery clocks to watch

    def test_stall_probe_fires_when_ob_starves(self):
        # Crash mp1's RB without mitigation: its heartbeats stop, the OB
        # can never clear its queue, and the probe must notice.
        deployment = DBODeployment(
            specs(), params=DBOParams(delta=20.0, straggler_threshold=None), seed=7
        )
        auditor = InvariantAuditor(stall_timeout=2_000.0)
        auditor.attach(deployment)
        deployment.engine.schedule_at(
            2_000.0, lambda: deployment.release_buffers[1].crash()
        )
        deployment.run(duration=12_000.0)
        report = auditor.report()
        stalls = report.liveness_events
        assert len(stalls) == 1  # one episode, reported once
        assert "queued" in stalls[0].detail
        assert report.ok  # a stall is not a safety violation


class TestHeartbeatGap:
    def make(self, period=10.0, factor=4.0):
        return InvariantAuditor(
            stall_timeout=None,
            expected_heartbeat_period=period,
            heartbeat_gap_factor=factor,
        )

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="expected_heartbeat_period"):
            InvariantAuditor(expected_heartbeat_period=0.0)
        with pytest.raises(ValueError, match="heartbeat_gap_factor"):
            InvariantAuditor(heartbeat_gap_factor=1.0)

    def test_disabled_by_default(self):
        auditor = InvariantAuditor(stall_timeout=None)
        auditor._on_heartbeat(Heartbeat("a", DeliveryClockStamp(1, 1.0)), 0.0)
        auditor._on_heartbeat(Heartbeat("a", DeliveryClockStamp(2, 1.0)), 1e6)
        assert auditor.report().violations == []

    def test_off_tempo_gap_flagged_once_per_episode(self):
        auditor = self.make()
        auditor._on_heartbeat(Heartbeat("a", DeliveryClockStamp(1, 1.0)), 0.0)
        auditor._on_heartbeat(Heartbeat("a", DeliveryClockStamp(2, 1.0)), 100.0)
        auditor._on_heartbeat(Heartbeat("a", DeliveryClockStamp(3, 1.0)), 200.0)
        report = auditor.report()
        assert [v.kind for v in report.violations] == ["heartbeat_gap"]
        assert report.violations[0].mp_id == "a"
        # Liveness, not safety: the run is degraded, never unsafe.
        assert report.ok

    def test_new_episode_after_recovery_flagged_again(self):
        auditor = self.make()
        arrivals = [0.0, 100.0, 110.0, 120.0, 250.0]  # gap, on-tempo, gap
        for index, arrival in enumerate(arrivals):
            auditor._on_heartbeat(
                Heartbeat("a", DeliveryClockStamp(index + 1, 1.0)), arrival
            )
        assert [v.kind for v in auditor.report().violations] == [
            "heartbeat_gap", "heartbeat_gap",
        ]

    def test_gap_within_tolerance_not_flagged(self):
        auditor = self.make(period=10.0, factor=4.0)
        for index, arrival in enumerate([0.0, 12.0, 50.0, 90.0]):  # <= 4x period
            auditor._on_heartbeat(
                Heartbeat("a", DeliveryClockStamp(index + 1, 1.0)), arrival
            )
        assert auditor.report().violations == []

    def test_clockless_heartbeats_still_tracked_for_cadence(self):
        # Piggyback-suppressed (clockless) heartbeats keep the cadence
        # alive; the gap probe runs before the clock guard.
        auditor = self.make()
        auditor._on_heartbeat(Heartbeat("a", None), 0.0)
        auditor._on_heartbeat(Heartbeat("a", None), 100.0)
        assert [v.kind for v in auditor.report().violations] == ["heartbeat_gap"]
        assert auditor.heartbeats_checked == 0

    def test_live_drift_storm_surfaces_gap(self):
        # A crawling clock (5x slow cadence) must show up as a
        # heartbeat_gap liveness event while the run stays safe.
        from repro.core.params import AggregationTopology
        from repro.faults.injector import FaultInjector
        from repro.faults.plan import FaultSchedule, FaultSpec

        params = DBOParams(delta=20.0)
        deployment = DBODeployment(
            specs(4), params=params, seed=5,
            topology=AggregationTopology(fanout=2, depth=2),
        )
        plan = FaultSchedule.of(
            FaultSpec(kind="clock_drift", at=1_000.0, duration=5_000.0,
                      target="mp0", magnitude=-0.8)
        )
        FaultInjector(plan).arm(deployment)
        auditor = InvariantAuditor(
            expected_heartbeat_period=params.tau, heartbeat_gap_factor=4.0
        )
        auditor.attach(deployment)
        deployment.run(duration=8_000.0)
        report = auditor.report()
        assert report.ok
        gaps = [v for v in report.violations if v.kind == "heartbeat_gap"]
        assert gaps and all(v.mp_id == "mp0" for v in gaps)
