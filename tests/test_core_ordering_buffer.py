"""Unit tests for the ordering buffer's release rule and straggler logic."""

import pytest

from repro.core.delivery_clock import DeliveryClockStamp
from repro.core.ordering_buffer import OrderingBuffer
from repro.exchange.messages import Heartbeat, Side, TaggedTrade, TradeOrder


def tagged(mp, seq, point, elapsed):
    order = TradeOrder(mp_id=mp, trade_seq=seq, side=Side.BUY, price=1.0)
    return TaggedTrade(trade=order, clock=DeliveryClockStamp(point, elapsed))


def heartbeat(mp, point, elapsed):
    return Heartbeat(mp_id=mp, clock=DeliveryClockStamp(point, elapsed))


def make_ob(participants=("a", "b", "c"), **kwargs):
    released = []
    ob = OrderingBuffer(
        participants=list(participants),
        sink=lambda t, now: released.append((t.trade.key, t.clock)),
        **kwargs,
    )
    return ob, released


class TestReleaseRule:
    def test_trade_held_until_all_others_pass_it(self):
        ob, released = make_ob(("a", "b"))
        ob.on_tagged_trade(tagged("a", 0, 0, 5.0), 0.0, 10.0)
        assert released == []
        ob.on_heartbeat(heartbeat("b", 0, 6.0), 0.0, 11.0)
        assert released == [(("a", 0), DeliveryClockStamp(0, 5.0))]

    def test_own_participant_watermark_not_required(self):
        # Trade from "a" needs only b's and c's progress, not a's own.
        ob, released = make_ob(("a", "b", "c"))
        ob.on_tagged_trade(tagged("a", 0, 0, 5.0), 0.0, 10.0)
        ob.on_heartbeat(heartbeat("b", 0, 9.0), 0.0, 11.0)
        ob.on_heartbeat(heartbeat("c", 0, 9.0), 0.0, 12.0)
        assert len(released) == 1

    def test_equal_watermark_is_not_enough(self):
        # Strict inequality: a heartbeat AT the stamp doesn't prove a
        # subsequent equal-stamp trade is impossible.
        ob, released = make_ob(("a", "b"))
        ob.on_tagged_trade(tagged("a", 0, 0, 5.0), 0.0, 10.0)
        ob.on_heartbeat(heartbeat("b", 0, 5.0), 0.0, 11.0)
        assert released == []

    def test_competing_trade_acts_as_progress_proof(self):
        # b's own trade with a higher stamp releases a's trade without
        # waiting for b's next heartbeat.
        ob, released = make_ob(("a", "b"))
        ob.on_tagged_trade(tagged("a", 0, 0, 5.0), 0.0, 10.0)
        ob.on_tagged_trade(tagged("b", 0, 0, 7.0), 0.0, 11.0)
        assert [key for key, _ in released] == [("a", 0)]

    def test_release_in_stamp_order_not_arrival_order(self):
        ob, released = make_ob(("a", "b"))
        ob.on_tagged_trade(tagged("b", 0, 0, 9.0), 0.0, 10.0)   # slower, arrives first
        ob.on_tagged_trade(tagged("a", 0, 0, 5.0), 0.0, 11.0)   # faster, arrives later
        ob.on_heartbeat(heartbeat("a", 0, 20.0), 0.0, 12.0)
        ob.on_heartbeat(heartbeat("b", 0, 20.0), 0.0, 13.0)
        assert [key for key, _ in released] == [("a", 0), ("b", 0)]

    def test_point_id_dominates_elapsed(self):
        ob, released = make_ob(("a", "b"))
        ob.on_tagged_trade(tagged("a", 0, 1, 0.5), 0.0, 10.0)
        ob.on_tagged_trade(tagged("b", 0, 0, 99.0), 0.0, 11.0)
        ob.on_heartbeat(heartbeat("a", 2, 0.0), 0.0, 12.0)
        ob.on_heartbeat(heartbeat("b", 2, 0.0), 0.0, 13.0)
        assert [key for key, _ in released] == [("b", 0), ("a", 0)]

    def test_no_release_before_every_participant_reports(self):
        ob, released = make_ob(("a", "b", "c"))
        ob.on_tagged_trade(tagged("a", 0, 0, 5.0), 0.0, 10.0)
        ob.on_heartbeat(heartbeat("b", 3, 0.0), 0.0, 11.0)
        # c has never reported: nothing can be proven safe.
        assert released == []

    def test_prestart_heartbeats_do_not_advance_watermark(self):
        ob, released = make_ob(("a", "b"))
        ob.on_tagged_trade(tagged("a", 0, 0, 5.0), 0.0, 10.0)
        ob.on_heartbeat(Heartbeat(mp_id="b", clock=None), 0.0, 11.0)
        assert released == []

    def test_single_participant_releases_own_trades_immediately(self):
        ob, released = make_ob(("a",))
        ob.on_tagged_trade(tagged("a", 0, 0, 5.0), 0.0, 10.0)
        assert len(released) == 1

    def test_causality_same_participant_fifo(self):
        ob, released = make_ob(("a", "b"))
        ob.on_tagged_trade(tagged("a", 0, 0, 5.0), 0.0, 10.0)
        ob.on_tagged_trade(tagged("a", 1, 0, 6.0), 0.0, 10.5)
        ob.on_heartbeat(heartbeat("b", 0, 50.0), 0.0, 11.0)
        assert [key for key, _ in released] == [("a", 0), ("a", 1)]

    def test_unknown_participant_rejected(self):
        ob, _ = make_ob(("a",))
        with pytest.raises(KeyError):
            ob.on_tagged_trade(tagged("zzz", 0, 0, 1.0), 0.0, 1.0)
        with pytest.raises(KeyError):
            ob.on_heartbeat(heartbeat("zzz", 0, 1.0), 0.0, 1.0)

    def test_duplicate_participants_rejected(self):
        with pytest.raises(ValueError):
            OrderingBuffer(participants=["a", "a"])

    def test_empty_participants_rejected(self):
        with pytest.raises(ValueError):
            OrderingBuffer(participants=[])

    def test_counters(self):
        ob, _ = make_ob(("a", "b"))
        ob.on_tagged_trade(tagged("a", 0, 0, 5.0), 0.0, 10.0)
        ob.on_heartbeat(heartbeat("b", 0, 9.0), 0.0, 11.0)
        assert ob.trades_received == 1
        assert ob.trades_released == 1
        assert ob.heartbeats_processed == 1
        assert ob.max_queue_depth == 1


class TestFlush:
    def test_flush_releases_everything(self):
        ob, released = make_ob(("a", "b"))
        ob.on_tagged_trade(tagged("a", 0, 0, 5.0), 0.0, 10.0)
        ob.on_tagged_trade(tagged("a", 1, 0, 7.0), 0.0, 10.5)
        flushed = ob.flush(now=100.0)
        assert flushed == 2
        assert [key for key, _ in released] == [("a", 0), ("a", 1)]
        assert ob.queue_depth == 0


class TestStragglers:
    def test_straggler_detected_by_lag(self):
        # Heartbeat for point generated at 0, elapsed 5, arriving at 500:
        # lag ≈ 495 > threshold 100 → straggler.
        ob, _ = make_ob(
            ("a", "b"),
            generation_time_of=lambda pid: 0.0,
            straggler_threshold=100.0,
        )
        ob.on_heartbeat(heartbeat("b", 0, 5.0), 0.0, 500.0)
        assert ob.straggler_ids() == ["b"]

    def test_straggler_not_waited_for(self):
        ob, released = make_ob(
            ("a", "b"),
            generation_time_of=lambda pid: 0.0,
            straggler_threshold=100.0,
        )
        ob.on_heartbeat(heartbeat("b", 0, 5.0), 0.0, 500.0)  # b is straggling
        ob.on_tagged_trade(tagged("a", 0, 1, 5.0), 0.0, 510.0)
        assert len(released) == 1  # released without waiting for b

    def test_straggler_recovers(self):
        ob, _ = make_ob(
            ("a", "b"),
            generation_time_of=lambda pid: float(pid) * 40.0,
            straggler_threshold=100.0,
        )
        ob.on_heartbeat(heartbeat("b", 0, 5.0), 0.0, 500.0)
        assert ob.straggler_ids() == ["b"]
        # Later heartbeat shows healthy lag: point 20 generated at 800,
        # elapsed 5, arrives 830 → lag 25.
        ob.on_heartbeat(heartbeat("b", 20, 5.0), 0.0, 830.0)
        assert ob.straggler_ids() == []

    def test_silent_participant_becomes_straggler(self):
        ob, released = make_ob(
            ("a", "b"),
            generation_time_of=lambda pid: 0.0,
            straggler_threshold=100.0,
        )
        ob.on_heartbeat(heartbeat("b", 0, 1.0), 0.0, 10.0)   # healthy at t=10
        ob.on_tagged_trade(tagged("a", 0, 5, 1.0), 0.0, 400.0)
        # b silent for 390 > threshold → a's trade released anyway.
        assert len(released) == 1

    def test_mitigation_disabled_waits_forever(self):
        ob, released = make_ob(("a", "b"))  # no threshold
        ob.on_heartbeat(heartbeat("b", 0, 1.0), 0.0, 10.0)
        ob.on_tagged_trade(tagged("a", 0, 5, 1.0), 0.0, 10_000.0)
        assert released == []

    def test_all_stragglers_degrades_to_fcfs(self):
        ob, released = make_ob(
            ("a", "b"),
            generation_time_of=lambda pid: 0.0,
            straggler_threshold=50.0,
        )
        ob.on_heartbeat(heartbeat("a", 0, 1.0), 0.0, 500.0)
        ob.on_heartbeat(heartbeat("b", 0, 1.0), 0.0, 500.0)
        ob.on_tagged_trade(tagged("a", 0, 0, 5.0), 0.0, 510.0)
        assert len(released) == 1
