"""End-to-end pins for supervised (detected) automatic recovery.

The contract of the self-healing control plane:

* **Parity** — for every crash plan, detected-mode recovery (crash only;
  the failure detector notices, the supervisor confirms and recovers)
  converges on the byte-identical trade ordering digest as scripted
  recovery, with zero trades lost and a clean safety audit.
* **Invisibility** — a fault-free supervised run is release-for-release
  identical to an unsupervised one and never confirms a death.
"""

from functools import partial

import pytest

from repro.baselines.base import default_network_specs
from repro.core.release_buffer import RetransmitPolicy
from repro.experiments.chaos import make_plan, run_chaos
from repro.experiments.runner import build_deployment
from repro.faults.plan import FaultSchedule, FaultSpec
from repro.metrics.serialization import trade_ordering_digest

DURATION = 1000.0


def specs_factory(n, seed):
    return partial(default_network_specs, n, seed=seed)


def run_pair(plan, n=4, seed=7, **kwargs):
    """Run the plan in detected and scripted mode from the same seed."""
    detected = run_chaos(
        "dbo", specs_factory(n, seed), DURATION, plan, seed=seed,
        supervise=True, **kwargs,
    )
    scripted = run_chaos(
        "dbo", specs_factory(n, seed), DURATION, plan, seed=seed,
        retransmit_policy=RetransmitPolicy(), **kwargs,
    )
    return detected, scripted


class TestDetectedScriptedParity:
    @pytest.mark.parametrize("plan_name,n", [
        ("ob-crash", 4),
        ("shard-crash", 4),
        ("aggregator-crash", 6),
    ])
    def test_crash_plans_converge_on_identical_digests(self, plan_name, n):
        plan = make_plan(plan_name, DURATION, n)
        detected, scripted = run_pair(plan, n=n)
        assert detected.safe, detected.faulted_audit.counts()
        assert scripted.safe, scripted.faulted_audit.counts()
        assert detected.faulted_digest == scripted.faulted_digest
        # Zero trades lost: the faulted run completes in full.
        assert detected.degradation.faulted_completion == 1.0
        assert scripted.degradation.faulted_completion == 1.0

    def test_detected_recovery_goes_through_the_supervisor(self):
        plan = make_plan("ob-crash", DURATION, 4)
        detected, _ = run_pair(plan)
        counters = detected.degradation.fault_counters
        assert counters.get("supervisor_confirms", 0.0) >= 1.0
        assert counters.get("supervisor_recoveries", 0.0) >= 1.0
        recovery = detected.faulted_audit.to_dict()["recovery"]
        states = {
            entry["state"] for entry in recovery.get("supervisor", {}).values()
        }
        assert "recovered" in states
        # Nothing stuck: every escalation either recovered or never left ok.
        assert not detected.faulted_audit.counts().get("recovery_stalled")


class TestFaultFreeInvisibility:
    def test_supervised_run_identical_to_unsupervised(self):
        seed = 9
        base = build_deployment("dbo", default_network_specs(4, seed=seed),
                                seed=seed)
        clean = base.run(DURATION)
        supervised_deployment = build_deployment(
            "dbo", default_network_specs(4, seed=seed), seed=seed,
            supervise=True,
        )
        supervised = supervised_deployment.run(DURATION)
        assert trade_ordering_digest(clean) == trade_ordering_digest(supervised)
        assert supervised_deployment.supervisor is not None
        assert supervised_deployment.supervisor.confirms == 0
        assert supervised_deployment.supervisor.recoveries == 0


class TestDetectedWindowFaults:
    def test_gateway_stall_resumed_by_supervisor(self):
        plan = make_plan("gateway-stall", DURATION, 4)
        report = run_chaos(
            "dbo", specs_factory(4, 7), DURATION, plan, seed=7, supervise=True,
        )
        assert report.safe
        assert report.degradation.faulted_completion == 1.0
        counters = report.degradation.fault_counters
        assert counters.get("supervisor_recoveries", 0.0) >= 1.0

    def test_ces_hiccup_detected_and_externally_healed(self):
        plan = make_plan("ces-hiccup", DURATION, 4)
        report = run_chaos(
            "dbo", specs_factory(4, 7), DURATION, plan, seed=7, supervise=True,
        )
        assert report.safe
        assert report.degradation.fault_counters.get("feed_hiccups", 0.0) >= 1.0
        # The scripted resume heals the feed; no stalled escalation remains.
        assert not report.faulted_audit.counts().get("recovery_stalled")


class TestCombinedFaults:
    """Crashes compounded with message-plane faults, both recovery modes."""

    def _aggregator_crash_during_ack_loss(self):
        return FaultSchedule.of(
            FaultSpec(kind="link_burst_loss", at=250.0, duration=300.0,
                      channel="ack-mp0", magnitude=0.5),
            FaultSpec(kind="aggregator_failure", at=400.0, target="agg1-0"),
            name="agg-crash-under-ack-loss",
        )

    def _ob_crash_during_ack_partition(self):
        return FaultSchedule.of(
            FaultSpec(kind="partition", at=300.0, duration=150.0,
                      channel="ack-*"),
            FaultSpec(kind="ob_failover", at=360.0),
            name="ob-crash-under-ack-partition",
        )

    def test_aggregator_crash_during_ack_loss_burst(self):
        detected, scripted = run_pair(self._aggregator_crash_during_ack_loss(),
                                      n=6)
        for report in (detected, scripted):
            assert report.safe, report.faulted_audit.counts()
            assert report.degradation.faulted_completion == 1.0
        assert detected.faulted_digest == scripted.faulted_digest

    def test_ob_crash_during_ack_channel_partition(self):
        detected, scripted = run_pair(self._ob_crash_during_ack_partition())
        for report in (detected, scripted):
            assert report.safe, report.faulted_audit.counts()
            assert report.degradation.faulted_completion == 1.0
        assert detected.faulted_digest == scripted.faulted_digest


class TestAuditRecoverySection:
    def test_recovery_snapshot_in_report(self):
        plan = make_plan("shard-crash", DURATION, 4)
        report = run_chaos(
            "dbo", specs_factory(4, 7), DURATION, plan, seed=7, supervise=True,
        )
        doc = report.faulted_audit.to_dict()
        assert "recovery" in doc
        assert "rb" in doc["recovery"]
        for state in doc["recovery"]["rb"].values():
            assert state["unacked"] == 0.0
            assert state["retransmits_abandoned"] == 0.0
        assert "supervisor" in doc["recovery"]
