"""Unit tests for RunResult/TradeRecord helpers."""

import pytest

from repro.metrics.records import RunResult, TradeRecord


def record(mp, seq, trigger, rt=5.0, s=0.0, f=None, pos=None):
    return TradeRecord(
        mp_id=mp,
        trade_seq=seq,
        trigger_point=trigger,
        response_time=rt,
        submission_time=s,
        forward_time=f,
        position=pos,
    )


def run_of(trades, raw=None):
    return RunResult(
        scheme="test",
        trades=trades,
        generation_times={0: 0.0},
        network_send_times={0: 0.0},
        raw_arrivals=raw or {"b": {0: 1.0}, "a": {0: 2.0}},
        delivery_times={},
    )


class TestTradeRecord:
    def test_key(self):
        assert record("a", 3, 0).key == ("a", 3)

    def test_completed_requires_both_fields(self):
        assert not record("a", 0, 0).completed
        assert not record("a", 0, 0, f=1.0).completed
        assert record("a", 0, 0, f=1.0, pos=0).completed


class TestRunResult:
    def test_participant_ids_sorted(self):
        assert run_of([]).participant_ids == ["a", "b"]

    def test_completed_trades_filtered(self):
        trades = [record("a", 0, 0, f=1.0, pos=0), record("a", 1, 0)]
        result = run_of(trades)
        assert len(result.completed_trades) == 1

    def test_trades_by_trigger_skips_incomplete(self):
        trades = [
            record("a", 0, 0, f=1.0, pos=0),
            record("b", 0, 0),  # incomplete: not grouped
            record("a", 1, 7, f=2.0, pos=1),
        ]
        races = run_of(trades).trades_by_trigger()
        assert set(races) == {0, 7}
        assert len(races[0]) == 1

    def test_completion_ratio(self):
        trades = [record("a", 0, 0, f=1.0, pos=0), record("a", 1, 0)]
        assert run_of(trades).completion_ratio() == 0.5

    def test_completion_ratio_empty_is_one(self):
        assert run_of([]).completion_ratio() == 1.0
