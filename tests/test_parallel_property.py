"""Property-based tests for the parallel runner (ISSUE 3 satellite).

The contract under test: for *arbitrary* matrix shapes and job counts,
process-parallel execution yields exactly the same ordered cell results
as serial execution — including when a cell raises, which must come back
as a captured per-cell error rather than killing the sweep.

The property runs against a synthetic cell function (full engine runs
under hypothesis would take minutes); the engine-backed equivalence is
pinned separately in test_chaos_tables.py / test_regression_table5.py.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.parallel.pool import parallel_map
from repro.sim.randomness import stable_u64, substream_seed


def matrix_cell(coords):
    """A deterministic pure function of the cell coordinates.

    Raises on a deterministic subset of inputs so every generated matrix
    exercises the error-capture path with some probability.
    """
    row, col, seed = coords
    value = stable_u64(seed, row, col)
    if value % 5 == 0:
        raise RuntimeError(f"cell ({row}, {col}) is cursed")
    return (row, col, value & 0xFFFF)


def outcome_key(outcome):
    return (outcome.index, outcome.ok, outcome.value, outcome.error)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    rows=st.integers(min_value=0, max_value=5),
    cols=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    jobs=st.integers(min_value=2, max_value=4),
)
def test_parallel_matches_serial_for_arbitrary_matrices(rows, cols, seed, jobs):
    cells = [(r, c, seed) for r in range(rows) for c in range(cols)]
    serial = parallel_map(matrix_cell, cells, jobs=1)
    parallel = parallel_map(matrix_cell, cells, jobs=jobs)
    assert list(map(outcome_key, serial)) == list(map(outcome_key, parallel))


@settings(max_examples=25, deadline=None)
@given(
    base=st.integers(min_value=0, max_value=2**32 - 1),
    labels=st.lists(
        st.one_of(st.text(max_size=8), st.integers(min_value=0, max_value=2**16)),
        max_size=4,
    ),
)
def test_substream_seed_is_stable_and_label_sensitive(base, labels):
    first = substream_seed(base, *labels)
    assert first == substream_seed(base, *labels)
    assert 0 <= first < 2**64
    # Appending a label must move the stream (independence across cells).
    assert first != substream_seed(base, *labels, "extra")
