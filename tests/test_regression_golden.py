"""Golden regression tests: exact deterministic outputs for fixed seeds.

Everything in this repository is deterministic — hash-based randomness,
a tie-broken event heap — so small runs have exactly reproducible
outputs.  These tests pin a handful of them.  If a refactor changes any
value here, either it altered behaviour (a bug) or it deliberately
changed semantics (update the goldens and say why in the commit).
"""

import pytest

from repro.baselines.base import default_network_specs
from repro.baselines.direct import DirectDeployment
from repro.core.delivery_clock import DeliveryClockStamp
from repro.core.system import DBODeployment
from repro.metrics.fairness import evaluate_fairness
from repro.metrics.latency import latency_stats
from repro.net.latency import UniformJitterLatency
from repro.sim.randomness import stable_u64, stable_unit


class TestRandomnessGoldens:
    """The stable mixer must never change: every seed in the repo
    (scenarios, workloads, latency draws) depends on it."""

    def test_stable_u64_values(self):
        assert stable_u64(0) == 16294208416658607535
        assert stable_u64(1, 2, 3) == 15020427595393229491
        assert stable_u64(42, -1) == 14714397866638982195

    def test_stable_unit_value(self):
        assert stable_unit(7, 11) == pytest.approx(0.8384540140198182, abs=1e-15)


class TestLatencyModelGoldens:
    def test_uniform_jitter_sample(self):
        model = UniformJitterLatency(10.0, 4.0, seed=1)
        # Pin one concrete draw.
        assert model.latency_at(1000.0) == pytest.approx(13.707704684514146, abs=1e-12)
        assert model.latency_at(1000.9) == model.latency_at(1000.0)  # same slot


class TestRunGoldens:
    def test_dbo_small_run_fingerprint(self):
        deployment = DBODeployment(default_network_specs(3, seed=9), seed=3)
        result = deployment.run(duration=3000.0)
        assert len(result.trades) == 225  # 75 ticks x 3 MPs
        assert result.completion_ratio() == 1.0
        assert evaluate_fairness(result).correct_pairs == 225
        assert evaluate_fairness(result).total_pairs == 225
        # The final ordering is a deterministic fingerprint of the whole
        # pipeline; pin its first and last entries and a checksum.
        ordering = deployment.ces.matching_engine.ordering()
        assert len(ordering) == 225
        assert ordering[0][1] == 0
        mp_counts = {mp: sum(1 for k in ordering if k[0] == mp) for mp in deployment.mp_ids}
        assert mp_counts == {"mp0": 75, "mp1": 75, "mp2": 75}

    def test_direct_small_run_fairness_is_stable(self):
        deployment = DirectDeployment(default_network_specs(3, seed=9), seed=3)
        result = deployment.run(duration=3000.0)
        report = evaluate_fairness(result)
        first = (report.correct_pairs, report.total_pairs)
        # Re-run from scratch: bit-identical.
        deployment2 = DirectDeployment(default_network_specs(3, seed=9), seed=3)
        report2 = evaluate_fairness(deployment2.run(duration=3000.0))
        assert (report2.correct_pairs, report2.total_pairs) == first

    def test_latency_reproducible_to_the_bit(self):
        def run():
            deployment = DBODeployment(default_network_specs(2, seed=9), seed=3)
            return latency_stats(deployment.run(duration=2000.0))

        a, b = run(), run()
        assert a.avg == b.avg
        assert a.p999 == b.p999


class TestStampGoldens:
    def test_stamp_ordering_table(self):
        stamps = [
            DeliveryClockStamp(0, 0.0),
            DeliveryClockStamp(0, 5.0),
            DeliveryClockStamp(1, 0.0),
            DeliveryClockStamp(1, 0.0001),
            DeliveryClockStamp(2, 100.0),
        ]
        assert stamps == sorted(stamps)
