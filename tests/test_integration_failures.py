"""Integration tests for failure modes: losses, stragglers, RB-MP latency.

These exercise the paper's robustness analyses:

* Appendix D — packet loss affects only the trades involved;
* §4.2.1 — straggler mitigation trades one participant's fairness for
  everyone's latency;
* §4.2.3 / Theorem 4 — non-colocated RBs preserve a weakened guarantee.
"""

import pytest

from repro.baselines.base import NetworkSpec
from repro.core.params import DBOParams
from repro.core.system import DBODeployment
from repro.exchange.feed import FeedConfig
from repro.metrics.fairness import evaluate_fairness, pairwise_correct
from repro.metrics.latency import latency_stats, trade_latencies
from repro.net.latency import CompositeLatency, ConstantLatency, StepLatency, UniformJitterLatency
from repro.participants.response_time import RaceResponseTime, UniformResponseTime
from repro.theory.bounds import theorem4_pair_guaranteed


def constant_specs(n, base=10.0, skew=2.0, **kwargs):
    return [
        NetworkSpec(
            forward=ConstantLatency(base + skew * i),
            reverse=ConstantLatency(base + skew * (n - i)),
            **kwargs,
        )
        for i in range(n)
    ]


class TestLosses:
    def test_lossless_baseline_is_fair(self):
        deployment = DBODeployment(constant_specs(3), seed=1)
        result = deployment.run(duration=4000.0)
        assert evaluate_fairness(result).ratio == 1.0

    def test_forward_loss_affects_only_related_races(self):
        """Appendix D: drop market data to one MP; races whose trigger
        reached everyone normally must stay perfectly ordered."""
        specs = constant_specs(3)
        specs[0] = NetworkSpec(
            forward=specs[0].forward,
            reverse=specs[0].reverse,
            loss_probability=0.05,
            reverse_loss_probability=0.0,
            recovery_delay=500.0,
        )
        deployment = DBODeployment(specs, seed=2)
        result = deployment.run(duration=8000.0, drain=30_000.0)
        # Triggers recovered out-of-band at mp0 did not advance the clock:
        # mp0's trades responding to them (or submitted while the clock
        # lagged) may be ordered unfairly — everything else must not be.
        rb0 = deployment.release_buffers[0]
        affected = set(rb0.recovered_point_ids)
        if affected:
            # Trades triggered by points delivered while recovery was in
            # flight share the lagging clock; exclude that window too.
            horizon = max(affected) + 25  # recovery_delay / interval slack
            affected |= set(range(min(affected), horizon + 1))
        races = result.trades_by_trigger()
        assert rb0.recovered_point_ids, "expected some losses at 5% rate"
        for trigger, trades in races.items():
            if trigger in affected:
                continue
            # Check within-race fairness by hand for unaffected races.
            for i in range(len(trades)):
                for j in range(i + 1, len(trades)):
                    verdict = pairwise_correct(trades[i], trades[j])
                    assert verdict in (None, True)

    def test_reverse_loss_late_trades_incomplete_or_misordered_only_themselves(self):
        specs = constant_specs(3)
        specs[1] = NetworkSpec(
            forward=specs[1].forward,
            reverse=specs[1].reverse,
            loss_probability=0.0,
            reverse_loss_probability=0.05,
            recovery_delay=300.0,
        )
        deployment = DBODeployment(specs, seed=3)
        result = deployment.run(duration=8000.0, drain=30_000.0)
        report = evaluate_fairness(result)
        # Losses are rare: overall fairness stays high, and unaffected
        # participants' pairwise orderings (mp0 vs mp2) remain perfect.
        races = result.trades_by_trigger()
        for trades in races.values():
            clean = [t for t in trades if t.mp_id in ("mp0", "mp2")]
            for i in range(len(clean)):
                for j in range(i + 1, len(clean)):
                    assert pairwise_correct(clean[i], clean[j]) in (None, True)
        assert report.ratio > 0.9


class TestStragglerMitigation:
    def spiked_specs(self):
        """mp0 suffers a long, massive forward spike mid-run."""
        spike = StepLatency([(0.0, 0.0), (2000.0, 3000.0), (6000.0, 0.0)])
        specs = constant_specs(3)
        specs[0] = NetworkSpec(
            forward=CompositeLatency([ConstantLatency(10.0), spike]),
            reverse=specs[0].reverse,
        )
        return specs

    def test_without_mitigation_everyone_waits(self):
        deployment = DBODeployment(
            self.spiked_specs(), params=DBOParams(straggler_threshold=None), seed=4
        )
        result = deployment.run(duration=8000.0, drain=30_000.0)
        stats = latency_stats(result)
        # The OB waits for the straggler: tail latency absorbs the spike.
        assert stats.maximum > 2000.0
        assert evaluate_fairness(result).ratio == 1.0

    def test_with_mitigation_others_stay_fast(self):
        deployment = DBODeployment(
            self.spiked_specs(), params=DBOParams(straggler_threshold=300.0), seed=4
        )
        result = deployment.run(duration=8000.0, drain=30_000.0)
        # Trades from the healthy participants keep low latency even
        # during the spike.
        healthy = [
            t.forward_time - result.generation_times[t.trigger_point] - t.response_time
            for t in result.completed_trades
            if t.mp_id != "mp0"
        ]
        assert max(healthy) < 1000.0
        # The straggler's own trades bear the cost (late, possibly unfair).
        assert result.counters["ob_heartbeats_processed"] > 0

    def test_mitigation_preserves_fairness_among_healthy(self):
        deployment = DBODeployment(
            self.spiked_specs(), params=DBOParams(straggler_threshold=300.0), seed=5
        )
        result = deployment.run(duration=8000.0, drain=30_000.0)
        races = result.trades_by_trigger()
        for trades in races.values():
            healthy = [t for t in trades if t.mp_id != "mp0"]
            for i in range(len(healthy)):
                for j in range(i + 1, len(healthy)):
                    assert pairwise_correct(healthy[i], healthy[j]) in (None, True)


class TestRBToMPLatency:
    """§4.2.3: bounded RB↔MP latency weakens but does not destroy fairness."""

    def specs_with_rb_mp_latency(self, bounds):
        specs = []
        for i, (low, high) in enumerate(bounds):
            specs.append(
                NetworkSpec(
                    forward=ConstantLatency(10.0 + 2.0 * i),
                    reverse=ConstantLatency(10.0),
                    rb_to_mp=UniformJitterLatency(low, high - low, seed=100 + i),
                    mp_to_rb=UniformJitterLatency(low, high - low, seed=200 + i),
                )
            )
        return specs

    def test_theorem4_pairs_always_ordered_correctly(self):
        # Round-trip RB↔MP latency in [2, 4] µs for each participant.
        bounds = [(1.0, 2.0), (1.0, 2.0)]  # per-leg → round trip in [2, 4]
        specs = self.specs_with_rb_mp_latency(bounds)
        rt = RaceResponseTime(2, low=5.0, high=12.0, gap=3.0, seed=6)
        deployment = DBODeployment(
            specs, params=DBOParams(delta=20.0), response_time_model=rt, seed=6
        )
        result = deployment.run(duration=8000.0)
        bh, bl = 4.0, 2.0
        races = result.trades_by_trigger()
        for trades in races.values():
            for i in range(len(trades)):
                for j in range(len(trades)):
                    a, b = trades[i], trades[j]
                    if a.mp_id == b.mp_id or not (a.completed and b.completed):
                        continue
                    if a.response_time >= b.response_time:
                        continue
                    if theorem4_pair_guaranteed(
                        a.response_time, b.response_time, 20.0, bh, bl
                    ):
                        assert a.position < b.position, (a, b)

    def test_tiny_margins_can_flip_with_rb_mp_jitter(self):
        bounds = [(1.0, 4.0), (1.0, 4.0)]
        specs = self.specs_with_rb_mp_latency(bounds)
        rt = RaceResponseTime(2, low=5.0, high=12.0, gap=0.05, seed=7)
        deployment = DBODeployment(
            specs, params=DBOParams(delta=20.0), response_time_model=rt, seed=7
        )
        result = deployment.run(duration=20_000.0)
        # Margins (0.05) far below the RB-MP variability (±3 µs): fairness
        # must degrade toward a coin flip — the Theorem 4 caveat.
        assert evaluate_fairness(result).ratio < 0.9
