"""Policy-conformance suite: every ordering policy obeys the engine contract.

One :class:`~repro.core.release_engine.ReleaseEngine` drives any
registered :class:`~repro.ordering.policy.OrderingPolicy`; this suite
pins the contract every policy — current and future — must satisfy:

* **no double release** — a key reaches the sink exactly once, no matter
  how duplicates, timed wakes, boundaries and flushes interleave;
* **conservation** — after a final flush nothing is pending and every
  admitted key was released;
* **per-source FIFO** — policies that promise it (all but the batch
  shufflers) release one participant's trades in submission order;
* **monotone watermarks** — the delivery-clock policy's per-participant
  watermarks never regress, and the probabilistic policy accounts for
  every stamp regression it lets through;
* **deterministic tie-break** — stamp ties release in ``(mp_id,
  trade_seq)`` order.

Hypothesis drives protocol-consistent interleavings (per-participant
stamps monotone, FIFO per source — what the network guarantees).
"""

from typing import Any, Dict, List, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delivery_clock import DeliveryClockStamp
from repro.core.release_engine import ReleaseEngine
from repro.exchange.messages import Side, TaggedTrade, TradeOrder
from repro.ordering import (
    BatchAuctionPolicy,
    DeliveryClockPolicy,
    OrderingPolicy,
    PassthroughPolicy,
    ProbabilisticPolicy,
    RandomizedWindowPolicy,
    SyncDeadlinePolicy,
)
from repro.sim.clocks import SynchronizedClock
from repro.sim.randomness import SubstreamCounter

MP_IDS = ["mp0", "mp1", "mp2"]

# Schemes whose policy promises per-source FIFO release (the batch
# shufflers randomize *within* a window by design).
FIFO_SCHEMES = ("direct", "cloudex", "dbo", "prob")
ALL_SCHEMES = ("direct", "cloudex", "fba", "libra", "dbo", "prob")


def make_policy(scheme: str) -> OrderingPolicy:
    if scheme == "direct":
        return PassthroughPolicy()
    if scheme == "cloudex":
        return SyncDeadlinePolicy(
            c2=5.0, clock=SynchronizedClock(error_bound=0.0, seed=11)
        )
    if scheme == "fba":
        return BatchAuctionPolicy(SubstreamCounter(7))
    if scheme == "libra":
        return RandomizedWindowPolicy(SubstreamCounter(8))
    if scheme == "dbo":
        return DeliveryClockPolicy(participants=list(MP_IDS))
    if scheme == "prob":
        return ProbabilisticPolicy(horizon=3.0)
    raise AssertionError(scheme)


def make_item(scheme: str, mp: str, seq: int, stamp_t: Tuple[int, float], now: float):
    order = TradeOrder(mp_id=mp, trade_seq=seq, side=Side.BUY, price=1.0)
    if scheme == "cloudex":
        # Reverse-channel shape: (order, sync submission stamp).
        return (order, now)
    if scheme in ("dbo", "prob"):
        return TaggedTrade(trade=order, clock=DeliveryClockStamp(*stamp_t))
    return order


class FakeEngine:
    """Minimal event engine: collects timed wakes, fires them in order."""

    def __init__(self) -> None:
        self.now = 0.0
        self._wakes: List[Tuple[float, int, int, Any]] = []
        self._n = 0

    def schedule_at(self, when: float, fn, priority: int = 0, args=()) -> None:
        self._n += 1
        self._wakes.append((when, priority, self._n, (fn, args)))

    def run_until(self, t: float) -> None:
        self._wakes.sort()
        while self._wakes and self._wakes[0][0] <= t:
            when, _, _, (fn, args) = self._wakes.pop(0)
            self.now = max(self.now, when)
            fn(*args)
            self._wakes.sort()
        self.now = max(self.now, t)


@st.composite
def op_sequence(draw):
    """A protocol-consistent interleaving of trades/heartbeats/boundaries.

    Per participant: delivery-clock stamps monotone, trade sequence
    numbers increasing — what FIFO channels deliver.  Roughly one in
    five trades is re-sent (a retransmission duplicate).
    """
    ops = []
    point = {mp: 0 for mp in MP_IDS}
    elapsed = {mp: 0.0 for mp in MP_IDS}
    seq = {mp: 0 for mp in MP_IDS}
    sent: List[Tuple[str, int, Tuple[int, float], float]] = []
    t = 0.0
    for _ in range(draw(st.integers(8, 40))):
        t += draw(st.floats(min_value=0.1, max_value=4.0))
        kind = draw(
            st.sampled_from(["trade", "trade", "trade", "hb", "boundary", "dup"])
        )
        mp = draw(st.sampled_from(MP_IDS))
        if draw(st.booleans()):
            elapsed[mp] += draw(st.floats(min_value=0.01, max_value=6.0))
        else:
            point[mp] += draw(st.integers(1, 2))
            elapsed[mp] = draw(st.floats(min_value=0.0, max_value=1.0))
        stamp_t = (point[mp], elapsed[mp])
        if kind == "trade":
            ops.append(("trade", mp, seq[mp], stamp_t, t))
            sent.append((mp, seq[mp], stamp_t, t))
            seq[mp] += 1
        elif kind == "dup" and sent:
            ops.append(("trade",) + draw(st.sampled_from(sent))[:3] + (t,))
        elif kind == "hb":
            ops.append(("hb", mp, 0, stamp_t, t))
        else:
            ops.append(("boundary", mp, 0, stamp_t, t))
    # Everyone reports a final, maximal watermark so the delivery-clock
    # policy can prove every queued trade safe before the flush.
    t += 1.0
    top = (max(point.values()) + 1, 0.0)
    for mp in MP_IDS:
        ops.append(("hb", mp, 0, top, t))
    return ops


def drive(scheme: str, ops):
    policy = make_policy(scheme)
    fake = FakeEngine()
    released: List[Any] = []
    engine = ReleaseEngine(
        policy, sink=lambda item, now: released.append(item), engine=fake
    )
    admitted: Dict[Tuple[str, int], int] = {}
    for kind, mp, seq, stamp_t, t in ops:
        fake.run_until(t)
        if kind == "trade":
            item = make_item(scheme, mp, seq, stamp_t, t)
            admitted[(mp, seq)] = admitted.get((mp, seq), 0) + 1
            engine.on_trade(item, t - 0.1, t)
        elif kind == "hb":
            if scheme == "dbo":
                engine.on_watermark(mp, DeliveryClockStamp(*stamp_t), t)
            else:
                engine.on_watermark(mp, None, t)
        else:
            engine.on_boundary(t)
    fake.run_until(fake.now + 1_000.0)
    engine.flush(fake.now)
    return policy, engine, released, admitted


def released_key(scheme: str, item) -> Tuple[str, int]:
    if scheme == "cloudex":
        return item[0].key
    if scheme in ("dbo", "prob"):
        return item.trade.key
    return item.key


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
@given(op_sequence())
@settings(max_examples=40, deadline=None)
def test_policy_conformance(scheme, ops):
    policy, engine, released, admitted = drive(scheme, ops)
    keys = [released_key(scheme, item) for item in released]

    # No double release, ever.
    assert len(keys) == len(set(keys))

    # Conservation: every admitted key out exactly once, nothing stuck.
    assert set(keys) == set(admitted)
    assert policy.pending_count() == 0
    assert engine.pending_count == 0
    assert engine.trades_released == len(admitted)
    assert engine.duplicates_ignored == sum(admitted.values()) - len(admitted)

    # Per-source FIFO for the policies that promise it.
    if scheme in FIFO_SCHEMES:
        for mp in MP_IDS:
            seqs = [seq for mp_id, seq in keys if mp_id == mp]
            assert seqs == sorted(seqs)

    # Probabilistic accounting: every stamp regression the policy let
    # through is counted — none hidden, none invented.
    if scheme == "prob":
        stamps = [item.clock.as_tuple() for item in released]
        regressions = 0
        max_seen = None
        for stamp in stamps:
            if max_seen is not None and stamp < max_seen:
                regressions += 1
            else:
                max_seen = stamp
        assert policy.ordering_inversions == regressions


@given(op_sequence())
@settings(max_examples=40, deadline=None)
def test_delivery_clock_watermarks_monotone(ops):
    """The DBO policy's per-participant watermarks never regress."""
    policy = make_policy("dbo")
    fake = FakeEngine()
    engine = ReleaseEngine(policy, sink=lambda item, now: None, engine=fake)
    last: Dict[str, Tuple[int, float]] = {}
    for kind, mp, seq, stamp_t, t in ops:
        if kind == "trade":
            engine.on_trade(make_item("dbo", mp, seq, stamp_t, t), t - 0.1, t)
        elif kind == "hb":
            engine.on_watermark(mp, DeliveryClockStamp(*stamp_t), t)
        for mp_id, value in policy._wm.items():
            assert value >= last.get(mp_id, value)
            last[mp_id] = value


@pytest.mark.parametrize("scheme", ["dbo", "prob", "cloudex"])
def test_equal_stamp_ties_release_in_key_order(scheme):
    """Stamp ties break deterministically on (mp_id, trade_seq)."""
    policy = make_policy(scheme)
    fake = FakeEngine()
    released: List[Any] = []
    engine = ReleaseEngine(
        policy, sink=lambda item, now: released.append(item), engine=fake
    )
    stamp_t = (3, 1.5)
    # Admit in an order that disagrees with the key order.
    for mp, seq in [("mp2", 0), ("mp0", 1), ("mp1", 0), ("mp0", 0)]:
        if scheme == "cloudex":
            item = (TradeOrder(mp_id=mp, trade_seq=seq, side=Side.BUY, price=1.0), 10.0)
        else:
            item = TaggedTrade(
                trade=TradeOrder(mp_id=mp, trade_seq=seq, side=Side.BUY, price=1.0),
                clock=DeliveryClockStamp(*stamp_t),
            )
        engine.on_trade(item, 0.0, 1.0)
    engine.flush(1_000.0)
    assert [released_key(scheme, item) for item in released] == [
        ("mp0", 0),
        ("mp0", 1),
        ("mp1", 0),
        ("mp2", 0),
    ]
