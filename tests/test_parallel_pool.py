"""Tests for the generic process-parallel map (repro.parallel.pool)."""

import pytest

from repro.parallel.pool import TaskOutcome, default_start_method, parallel_map


def square(x):
    return x * x


def explode_on_odd(x):
    if x % 2:
        raise ValueError(f"odd input {x}")
    return x // 2


class TestSerialPath:
    def test_results_in_order(self):
        outcomes = parallel_map(square, [3, 1, 2], jobs=1)
        assert [o.value for o in outcomes] == [9, 1, 4]
        assert [o.index for o in outcomes] == [0, 1, 2]
        assert all(o.ok for o in outcomes)

    def test_error_captured_not_raised(self):
        outcomes = parallel_map(explode_on_odd, [0, 1, 2], jobs=1)
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[1].value is None
        assert outcomes[1].error == "ValueError: odd input 1"
        assert "explode_on_odd" in outcomes[1].traceback

    def test_empty_items(self):
        assert parallel_map(square, [], jobs=4) == []

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            parallel_map(square, [1], jobs=-1)

    def test_single_item_never_forks(self):
        # len(items) <= 1 short-circuits to the in-process path even with
        # jobs > 1; an unpicklable fn proves no pool was involved.
        outcomes = parallel_map(lambda x: x + 1, [41], jobs=8)
        assert outcomes[0].value == 42


class TestParallelPath:
    def test_matches_serial(self):
        items = list(range(7))
        serial = parallel_map(explode_on_odd, items, jobs=1)
        parallel = parallel_map(explode_on_odd, items, jobs=3)
        assert [(o.index, o.ok, o.value, o.error) for o in serial] == [
            (o.index, o.ok, o.value, o.error) for o in parallel
        ]

    def test_more_jobs_than_items(self):
        outcomes = parallel_map(square, [1, 2], jobs=16)
        assert [o.value for o in outcomes] == [1, 4]

    def test_outcomes_are_task_outcomes(self):
        for outcome in parallel_map(square, [1, 2, 3], jobs=2):
            assert isinstance(outcome, TaskOutcome)


class TestStructuredCapture:
    """DBO108 in practice: failures carry class name + traceback as data."""

    def test_exc_type_recorded_serially(self):
        outcomes = parallel_map(explode_on_odd, [0, 1], jobs=1)
        assert outcomes[0].exc_type is None
        assert outcomes[1].exc_type == "ValueError"
        assert outcomes[1].error == "ValueError: odd input 1"
        assert "ValueError: odd input 1" in outcomes[1].traceback

    def test_exc_type_crosses_the_process_boundary(self):
        serial = parallel_map(explode_on_odd, [0, 1, 2, 3], jobs=1)
        parallel = parallel_map(explode_on_odd, [0, 1, 2, 3], jobs=2)
        assert [(o.ok, o.exc_type, o.error) for o in serial] == [
            (o.ok, o.exc_type, o.error) for o in parallel
        ]

    def test_error_type_threaded_into_cell_results(self):
        from repro.parallel.matrix import CellSpec, run_cells

        cells = [CellSpec(scheme="no-such-scheme", seed=1, duration=500.0)]
        (result,) = run_cells(cells, jobs=1)
        assert not result.ok
        assert result.error_type == "UnknownSchemeError"
        assert result.to_dict()["error_type"] == "UnknownSchemeError"


def test_default_start_method_is_known():
    assert default_start_method() in {"fork", "spawn"}
