"""Unit and property tests for delivery clocks (§4.1.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delivery_clock import (
    ClockNotStartedError,
    DeliveryClock,
    DeliveryClockStamp,
)
from repro.sim.clocks import DriftingClock


class TestStampOrdering:
    def test_lexicographic_point_id_first(self):
        assert DeliveryClockStamp(1, 100.0) < DeliveryClockStamp(2, 0.0)

    def test_elapsed_breaks_ties(self):
        assert DeliveryClockStamp(1, 5.0) < DeliveryClockStamp(1, 6.0)

    def test_equality(self):
        assert DeliveryClockStamp(1, 5.0) == DeliveryClockStamp(1, 5.0)
        assert DeliveryClockStamp(1, 5.0) != DeliveryClockStamp(1, 5.1)

    def test_hashable(self):
        stamps = {DeliveryClockStamp(1, 5.0), DeliveryClockStamp(1, 5.0)}
        assert len(stamps) == 1

    def test_comparison_operators(self):
        a, b = DeliveryClockStamp(0, 1.0), DeliveryClockStamp(0, 2.0)
        assert a <= b and b >= a and b > a

    def test_validation(self):
        with pytest.raises(ValueError):
            DeliveryClockStamp(-1, 0.0)
        with pytest.raises(ValueError):
            DeliveryClockStamp(0, -0.1)

    @given(
        st.tuples(st.integers(0, 100), st.floats(0.0, 100.0, allow_nan=False)),
        st.tuples(st.integers(0, 100), st.floats(0.0, 100.0, allow_nan=False)),
    )
    def test_matches_tuple_order(self, a, b):
        sa, sb = DeliveryClockStamp(*a), DeliveryClockStamp(*b)
        assert (sa < sb) == (a < b)
        assert (sa == sb) == (a == b)


class TestDeliveryClock:
    def test_not_started_initially(self):
        clock = DeliveryClock()
        assert not clock.started
        assert clock.last_point_id is None

    def test_read_before_delivery_raises(self):
        with pytest.raises(ClockNotStartedError):
            DeliveryClock().read(0.0)

    def test_tracks_elapsed_since_delivery(self):
        clock = DeliveryClock()
        clock.on_delivery(0, 100.0)
        assert clock.read(107.5) == DeliveryClockStamp(0, 7.5)

    def test_batch_delivery_jumps_point_id(self):
        clock = DeliveryClock()
        clock.on_delivery(0, 100.0)
        clock.on_delivery(3, 120.0)
        assert clock.last_point_id == 3
        assert clock.read(120.0) == DeliveryClockStamp(3, 0.0)

    def test_regressing_point_id_rejected(self):
        clock = DeliveryClock()
        clock.on_delivery(5, 100.0)
        with pytest.raises(ValueError):
            clock.on_delivery(5, 110.0)
        with pytest.raises(ValueError):
            clock.on_delivery(3, 110.0)

    def test_reading_before_last_delivery_rejected(self):
        clock = DeliveryClock()
        clock.on_delivery(0, 100.0)
        with pytest.raises(ValueError):
            clock.read(99.0)

    def test_offset_does_not_affect_reading(self):
        plain = DeliveryClock(DriftingClock(offset=0.0))
        shifted = DeliveryClock(DriftingClock(offset=1e9))
        for c in (plain, shifted):
            c.on_delivery(0, 100.0)
        assert plain.read(105.0) == shifted.read(105.0)

    def test_drift_scales_elapsed_slightly(self):
        clock = DeliveryClock(DriftingClock(drift_rate=1e-4))
        clock.on_delivery(0, 0.0)
        stamp = clock.read(1000.0)
        assert stamp.elapsed == pytest.approx(1000.1)

    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
            min_size=2,
            max_size=20,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_monotonicity_property(self, gaps):
        """Readings never decrease as time advances and points deliver."""
        clock = DeliveryClock()
        t = 0.0
        clock.on_delivery(0, t)
        last = clock.read(t)
        point = 0
        for i, gap in enumerate(gaps):
            t += gap
            if i % 2 == 0:
                point += 1
                clock.on_delivery(point, t)
            current = clock.read(t)
            assert current >= last
            last = current
