"""Unit tests for the deterministic phi-accrual-style FailureDetector."""

import pytest

from repro.core.params import SupervisionPolicy
from repro.faults.detector import FailureDetector
from repro.sim.engine import EventEngine


def make_detector(engine, **policy_kwargs):
    policy_kwargs.setdefault("check_interval", 10.0)
    policy = SupervisionPolicy(**policy_kwargs)
    return FailureDetector(engine, policy)


def drive(engine, detector, pulses, stop_after=500.0):
    """Schedule explicit pulses and run the engine to quiescence."""
    for name, time in pulses:
        engine.schedule_at(time, detector.pulse, priority=5, args=(name, time))
    detector.start(0.0, stop_after)
    engine.run()


class TestConstruction:
    def test_needs_a_check_interval(self):
        policy = SupervisionPolicy()  # check_interval defaults to None
        with pytest.raises(ValueError, match="check_interval"):
            FailureDetector(EventEngine(), policy)

    def test_interval_argument_overrides_policy(self):
        detector = FailureDetector(
            EventEngine(), SupervisionPolicy(), check_interval=7.0
        )
        assert detector.check_interval == 7.0

    def test_duplicate_registration_rejected(self):
        engine = EventEngine()
        detector = make_detector(engine)
        detector.register("rb:mp0")
        with pytest.raises(ValueError, match="already registered"):
            detector.register("rb:mp0")


class TestSuspicion:
    def test_steady_pulses_never_suspect(self):
        engine = EventEngine()
        detector = make_detector(engine)
        detector.register("rb:mp0")
        events = []
        detector.subscribe(lambda *args: events.append(args))
        drive(engine, detector, [("rb:mp0", t) for t in range(10, 500, 10)])
        assert events == []
        assert detector.suspects_raised == 0

    def test_silence_raises_suspect_then_pulse_clears(self):
        engine = EventEngine()
        detector = make_detector(engine, suspect_after=3.0)
        detector.register("rb:mp0")
        events = []
        detector.subscribe(lambda name, event, now: events.append((name, event, now)))
        # Pulse every 10 µs until t=100, silence, one late pulse at 300
        # (checks stop at 310 — the re-silence afterwards is irrelevant).
        pulses = [("rb:mp0", float(t)) for t in range(10, 101, 10)]
        pulses.append(("rb:mp0", 300.0))
        drive(engine, detector, pulses, stop_after=310.0)
        kinds = [event for _, event, _ in events]
        assert kinds == ["suspect", "alive"]
        suspect_time = events[0][2]
        # Mean gap is 10 µs, threshold 3 gaps: suspicion crosses at the
        # first check at or after t=130.
        assert 130.0 <= suspect_time <= 140.0
        assert events[1][2] == 300.0
        assert detector.suspects_raised == 1
        assert detector.suspects_cleared == 1

    def test_suspicion_is_zero_right_after_pulse(self):
        engine = EventEngine()
        detector = make_detector(engine)
        detector.register("rb:mp0")
        detector.pulse("rb:mp0", 10.0)
        detector.pulse("rb:mp0", 20.0)
        assert detector.suspicion("rb:mp0", 20.0) == 0.0
        assert detector.suspicion("rb:mp0", 50.0) == pytest.approx(3.0)

    def test_pulsed_since(self):
        engine = EventEngine()
        detector = make_detector(engine)
        detector.register("rb:mp0")
        detector.pulse("rb:mp0", 42.0)
        assert detector.pulsed_since("rb:mp0", 41.0)
        assert not detector.pulsed_since("rb:mp0", 42.0)


class TestOdometerPolling:
    def test_odometer_change_counts_as_pulse(self):
        engine = EventEngine()
        detector = make_detector(engine, suspect_after=3.0)
        odometer = {"value": 0.0}
        detector.register("ob", poll=lambda: odometer["value"])
        events = []
        detector.subscribe(lambda name, event, now: events.append((name, event, now)))

        def bump():
            odometer["value"] += 1.0

        # Work until t=100, then the component goes silent.
        for t in range(5, 101, 5):
            engine.schedule_at(float(t), bump, priority=4)
        detector.start(0.0, 400.0)
        engine.run()
        assert [event for _, event, _ in events] == ["suspect"]

    def test_odometer_decrease_still_counts_as_liveness(self):
        # Failover carry-over can transiently lower an odometer; the
        # detector must treat any change as a pulse, not only increases.
        engine = EventEngine()
        detector = make_detector(engine, suspect_after=3.0)
        odometer = {"value": 100.0}
        detector.register("ob", poll=lambda: odometer["value"])
        events = []
        detector.subscribe(lambda name, event, now: events.append(event))

        def wobble(delta):
            odometer["value"] += delta

        for index, t in enumerate(range(5, 201, 5)):
            engine.schedule_at(float(t), wobble, priority=4,
                               args=(1.0 if index % 3 else -2.0,))
        detector.start(0.0, 150.0)
        engine.run()
        assert "suspect" not in events


class TestLifecycle:
    def test_retired_endpoint_never_suspects(self):
        engine = EventEngine()
        detector = make_detector(engine)
        detector.register("shard-0")
        detector.retire("shard-0")
        events = []
        detector.subscribe(lambda *args: events.append(args))
        detector.start(0.0, 300.0)
        engine.run()
        assert events == []

    def test_resume_rearms_with_fresh_window(self):
        engine = EventEngine()
        detector = make_detector(engine)
        detector.register("gateway")
        detector.pulse("gateway", 10.0)
        detector.pulse("gateway", 20.0)
        detector.retire("gateway")
        detector.resume("gateway", 200.0)
        state = detector.state_of("gateway")
        assert not state.retired
        assert state.last_pulse == 200.0
        assert len(state.gaps) == 0

    def test_checks_stop_past_horizon(self):
        engine = EventEngine()
        detector = make_detector(engine, suspect_after=3.0)
        detector.register("rb:mp0")
        events = []
        detector.subscribe(lambda *args: events.append(args))
        # Single pulse at t=10, horizon at t=30: the silence after the
        # horizon is drain-phase quiet, never suspected.
        drive(engine, detector, [("rb:mp0", 10.0)], stop_after=30.0)
        assert events == []

    def test_counters_shape(self):
        engine = EventEngine()
        detector = make_detector(engine)
        detector.register("a")
        detector.register("b")
        counters = detector.counters()
        assert counters["detector_endpoints"] == 2.0
        assert set(counters) == {
            "detector_endpoints",
            "detector_checks",
            "detector_suspects",
            "detector_suspects_cleared",
        }


class TestDeterminism:
    def test_identical_runs_identical_event_logs(self):
        def run_once():
            engine = EventEngine()
            detector = make_detector(engine, suspect_after=3.0)
            detector.register("rb:mp0")
            detector.register("rb:mp1")
            events = []
            detector.subscribe(lambda name, event, now: events.append((name, event, now)))
            pulses = [("rb:mp0", float(t)) for t in range(10, 101, 10)]
            pulses += [("rb:mp1", float(t)) for t in range(7, 301, 7)]
            drive(engine, detector, pulses, stop_after=400.0)
            return events, detector.counters()

        first = run_once()
        second = run_once()
        assert first == second
