"""Tests for telemetry probes and the deployment wiring."""

import pytest

from repro.baselines.base import NetworkSpec, default_network_specs
from repro.core.system import DBODeployment
from repro.net.latency import CompositeLatency, ConstantLatency, StepLatency
from repro.sim.engine import EventEngine
from repro.sim.telemetry import Probe, TelemetryRecorder


class TestProbe:
    def test_samples_on_cadence(self):
        engine = EventEngine()
        counter = {"v": 0.0}
        probe = Probe(engine, "p", lambda: counter["v"], interval=10.0)
        probe.start(start_time=0.0)
        engine.schedule_at(25.0, lambda: counter.update(v=5.0))
        engine.run(until=50.0)
        times = [t for t, _ in probe.samples]
        assert times == [0.0, 10.0, 20.0, 30.0, 40.0, 50.0]
        assert probe.samples[2][1] == 0.0
        assert probe.samples[3][1] == 5.0

    def test_stop_time_respected(self):
        engine = EventEngine()
        probe = Probe(engine, "p", lambda: 1.0, interval=10.0)
        probe.start(start_time=0.0, stop_time=25.0)
        engine.run(until=100.0)
        assert all(t <= 25.0 for t, _ in probe.samples)

    def test_statistics(self):
        engine = EventEngine()
        values = iter([0.0, 2.0, 4.0, 0.0, 0.0])
        probe = Probe(engine, "p", lambda: next(values), interval=10.0)
        probe.start(start_time=0.0, stop_time=40.0)
        engine.run(until=100.0)
        assert probe.maximum() == 4.0
        assert probe.mean() == pytest.approx(1.2)
        # Above 1.0 between samples at t=10 and t=30: 20 µs.
        assert probe.time_above(1.0) == pytest.approx(20.0)

    def test_empty_probe_statistics_raise(self):
        engine = EventEngine()
        probe = Probe(engine, "p", lambda: 1.0, interval=10.0)
        with pytest.raises(ValueError):
            probe.maximum()

    def test_validation(self):
        engine = EventEngine()
        with pytest.raises(ValueError):
            Probe(engine, "p", lambda: 1.0, interval=0.0)
        probe = Probe(engine, "p", lambda: 1.0, interval=1.0)
        probe.start()
        with pytest.raises(RuntimeError):
            probe.start()


class TestRecorder:
    def test_bundles_probes(self):
        engine = EventEngine()
        recorder = TelemetryRecorder(engine, interval=10.0)
        recorder.add("a", lambda: 1.0)
        recorder.add("b", lambda: 2.0)
        recorder.start_all(stop_time=20.0)
        engine.run(until=50.0)
        series = recorder.series()
        assert set(series) == {"a", "b"}
        assert len(series["a"]) == 3

    def test_duplicate_name_rejected(self):
        recorder = TelemetryRecorder(EventEngine())
        recorder.add("a", lambda: 1.0)
        with pytest.raises(ValueError):
            recorder.add("a", lambda: 2.0)

    def test_summary_rows(self):
        engine = EventEngine()
        recorder = TelemetryRecorder(engine, interval=10.0)
        recorder.add("a", lambda: 3.0)
        recorder.start_all(stop_time=20.0)
        engine.run(until=30.0)
        rows = recorder.summary_rows()
        assert rows[0][0] == "a"
        assert rows[0][2] == 3.0


class TestDeploymentTelemetry:
    def test_disabled_by_default(self):
        deployment = DBODeployment(default_network_specs(2, seed=5), seed=1)
        deployment.run(duration=1000.0)
        assert deployment.telemetry is None

    def test_probes_capture_spike_queue_buildup(self):
        spike = StepLatency([(0.0, 0.0), (3000.0, 300.0), (4000.0, 0.0)])
        specs = [
            NetworkSpec(
                forward=CompositeLatency([ConstantLatency(10.0), spike]),
                reverse=ConstantLatency(10.0),
            ),
            NetworkSpec(forward=ConstantLatency(12.0), reverse=ConstantLatency(12.0)),
        ]
        deployment = DBODeployment(specs, seed=1, telemetry_interval=50.0)
        deployment.run(duration=10_000.0)
        rb_probe = deployment.telemetry.probes["rb_queue_mp0"]
        # The spike queues several batches at mp0's RB...
        assert rb_probe.maximum() >= 3
        # ...and the buildup is transient (drained well before the end).
        tail = [v for t, v in rb_probe.samples if t > 8_000.0]
        assert max(tail) == 0.0
        # The OB queue also swells while waiting for the lagging RB.
        assert deployment.telemetry.probes["ob_queue_depth"].maximum() >= 3
