"""Suppression comments and the committed-baseline machinery."""

import json
import textwrap

import pytest

from repro.lint import (
    apply_baseline,
    build_baseline,
    collect_suppressions,
    lint_paths,
    lint_source,
    load_baseline,
    write_baseline,
)
from repro.lint.suppressions import is_suppressed

SRC = "src/repro/core/example.py"


class TestSuppressions:
    def test_coded_suppression_silences_that_rule(self):
        src = "import time\nstart = time.time()  # dbo: ignore[DBO101]\n"
        assert lint_source(src, path=SRC) == []

    def test_coded_suppression_leaves_other_rules(self):
        src = (
            "import time\n"
            "import random\n"
            "start = time.time() + random.random()  # dbo: ignore[DBO101]\n"
        )
        assert [f.code for f in lint_source(src, path=SRC)] == ["DBO102"]

    def test_blanket_suppression_silences_everything(self):
        src = (
            "import time\n"
            "import random\n"
            "start = time.time() + random.random()  # dbo: ignore\n"
        )
        assert lint_source(src, path=SRC) == []

    def test_multiple_codes_in_one_comment(self):
        src = (
            "import time\n"
            "import random\n"
            "start = time.time() + random.random()  # dbo: ignore[DBO101, DBO102]\n"
        )
        assert lint_source(src, path=SRC) == []

    def test_wrong_code_does_not_suppress(self):
        src = "import time\nstart = time.time()  # dbo: ignore[DBO102]\n"
        assert [f.code for f in lint_source(src, path=SRC)] == ["DBO101"]

    def test_suppression_is_line_local(self):
        src = (
            "import time\n"
            "a = time.time()  # dbo: ignore[DBO101]\n"
            "b = time.time()\n"
        )
        findings = lint_source(src, path=SRC)
        assert [(f.code, f.line) for f in findings] == [("DBO101", 3)]

    def test_comment_inside_string_is_not_a_suppression(self):
        src = (
            "import time\n"
            'label = "# dbo: ignore[DBO101]"\n'
            "start = time.time()\n"
        )
        assert [f.code for f in lint_source(src, path=SRC)] == ["DBO101"]

    def test_collect_suppressions_table(self):
        src = "x = 1  # dbo: ignore[DBO103]\ny = 2  # dbo: ignore\n"
        table = collect_suppressions(src)
        assert is_suppressed(table, 1, "DBO103")
        assert not is_suppressed(table, 1, "DBO101")
        assert is_suppressed(table, 2, "DBO101")
        assert not is_suppressed(table, 3, "DBO101")


def _findings(source, path=SRC):
    return lint_source(textwrap.dedent(source), path=path)


class TestBaseline:
    def test_fingerprint_survives_line_shift(self):
        before = _findings("import time\nstart = time.time()\n")
        after = _findings("import time\n\n\n# moved\nstart = time.time()\n")
        assert before[0].line != after[0].line
        assert before[0].fingerprint() == after[0].fingerprint()
        assert before[0].baseline_key() == after[0].baseline_key()

    def test_apply_baseline_splits_new_from_grandfathered(self):
        findings = _findings("import time\nstart = time.time()\n")
        baseline = build_baseline(findings)
        new, grandfathered = apply_baseline(findings, baseline)
        assert new == []
        assert len(grandfathered) == 1
        assert grandfathered[0].baselined

    def test_duplicate_lines_counted(self):
        src = "import time\nstart = time.time()\nstop = time.time()\n"
        findings = _findings(src)
        assert len(findings) == 2
        # The two findings are distinct lines -> distinct fingerprints,
        # but identical text would share a key with count 2:
        same_line = _findings("import time\na = time.time()\na = time.time()\n")
        keys = [f.baseline_key() for f in same_line]
        assert keys[0] == keys[1]
        baseline = build_baseline(same_line)
        assert baseline[keys[0]] == 2
        # Only one baselined occurrence leaves the second as new.
        short = {keys[0]: 1}
        new, grandfathered = apply_baseline(same_line, short)
        assert len(new) == 1 and len(grandfathered) == 1

    def test_edited_line_stops_matching(self):
        findings = _findings("import time\nstart = time.time()\n")
        baseline = build_baseline(findings)
        edited = _findings("import time\nstart = time.time() + 1.0\n")
        new, grandfathered = apply_baseline(edited, baseline)
        assert len(new) == 1
        assert grandfathered == []

    def test_write_and_load_round_trip(self, tmp_path):
        findings = _findings("import time\nstart = time.time()\n")
        path = str(tmp_path / "lint-baseline.json")
        count = write_baseline(path, findings)
        assert count == 1
        loaded = load_baseline(path)
        assert loaded == build_baseline(findings)
        document = json.loads((tmp_path / "lint-baseline.json").read_text())
        assert document["version"] == 1

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "absent.json")) == {}

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "entries": {}}))
        with pytest.raises(ValueError):
            load_baseline(str(path))


class TestLintPaths:
    def _tree(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "dirty.py").write_text("import time\nstart = time.time()\n")
        (pkg / "clean.py").write_text("def ok():\n    return 1\n")
        cache = pkg / "__pycache__"
        cache.mkdir()
        (cache / "dirty.cpython-311.py").write_text("import time\nt = time.time()\n")
        return tmp_path

    def test_walk_finds_findings_with_relative_paths(self, tmp_path):
        root = self._tree(tmp_path)
        run = lint_paths([str(root / "src")], root=str(root))
        assert run.checked_files == 2  # __pycache__ skipped
        assert [f.path for f in run.findings] == ["src/repro/core/dirty.py"]

    def test_baseline_applied(self, tmp_path):
        root = self._tree(tmp_path)
        first = lint_paths([str(root / "src")], root=str(root))
        baseline = build_baseline(first.findings)
        second = lint_paths([str(root / "src")], root=str(root), baseline=baseline)
        assert second.ok
        assert len(second.baselined) == 1

    def test_missing_path_is_usage_error(self, tmp_path):
        from repro.lint import LintUsageError

        with pytest.raises(LintUsageError):
            lint_paths([str(tmp_path / "nope")], root=str(tmp_path))

    def test_deterministic_output(self, tmp_path):
        root = self._tree(tmp_path)
        runs = [lint_paths([str(root / "src")], root=str(root)) for _ in range(2)]
        assert [f.to_dict() for f in runs[0].findings] == [
            f.to_dict() for f in runs[1].findings
        ]
