"""Tests for sync-assisted delivery (§4.2.6 extension)."""

import pytest

from repro.baselines.base import NetworkSpec
from repro.core.params import DBOParams
from repro.core.sync_delivery import SyncAssistedReleaseBuffer
from repro.core.system import DBODeployment
from repro.exchange.messages import MarketDataBatch, MarketDataPoint
from repro.metrics.fairness import evaluate_fairness
from repro.net.latency import CompositeLatency, ConstantLatency, StepLatency, UniformJitterLatency
from repro.participants.response_time import RaceResponseTime, UniformResponseTime
from repro.sim.clocks import SynchronizedClock
from repro.sim.engine import EventEngine
from repro.theory.fairness_defs import lrtf_violations


def batch(batch_id, first_id, close_time):
    return MarketDataBatch(
        batch_id=batch_id,
        points=(MarketDataPoint(point_id=first_id, generation_time=close_time),),
        close_time=close_time,
    )


def make_rb(engine, c1=25.0, error=0.0, delta=20.0):
    rb = SyncAssistedReleaseBuffer(
        engine,
        mp_id="mp0",
        pacing_gap=delta,
        heartbeat_period=20.0,
        sync_clock=SynchronizedClock(error_bound=error, seed=1),
        target_delay=c1,
    )
    deliveries = []
    rb.connect_mp(lambda points, t: deliveries.append(t))
    rb.connect_ob(lambda t: None, lambda h: None)
    return rb, deliveries


class TestUnit:
    def test_fast_arrival_waits_for_target(self):
        engine = EventEngine()
        rb, deliveries = make_rb(engine, c1=25.0)
        b = batch(0, 0, close_time=100.0)
        engine.schedule_at(105.0, lambda: rb.on_batch(b, 100.0, 105.0), priority=0)
        engine.run()
        assert deliveries == [125.0]  # close + C1, not arrival
        assert rb.targets_met == 1

    def test_late_arrival_releases_immediately(self):
        engine = EventEngine()
        rb, deliveries = make_rb(engine, c1=25.0)
        b = batch(0, 0, close_time=100.0)
        engine.schedule_at(140.0, lambda: rb.on_batch(b, 100.0, 140.0), priority=0)
        engine.run()
        assert deliveries == [140.0]
        assert rb.targets_missed == 1

    def test_pacing_still_enforced(self):
        engine = EventEngine()
        rb, deliveries = make_rb(engine, c1=25.0, delta=20.0)
        b0 = batch(0, 0, close_time=100.0)
        b1 = batch(1, 1, close_time=105.0)  # targets only 5 apart
        engine.schedule_at(101.0, lambda: rb.on_batch(b0, 100.0, 101.0), priority=0)
        engine.schedule_at(106.0, lambda: rb.on_batch(b1, 105.0, 106.0), priority=0)
        engine.run()
        assert deliveries[0] == 125.0
        assert deliveries[1] == pytest.approx(145.0)  # pacing, not 130

    def test_sync_error_shifts_target(self):
        engine = EventEngine()
        rb, deliveries = make_rb(engine, c1=25.0, error=3.0)
        b = batch(0, 0, close_time=100.0)
        engine.schedule_at(105.0, lambda: rb.on_batch(b, 100.0, 105.0), priority=0)
        engine.run()
        assert deliveries[0] == pytest.approx(125.0, abs=3.0 + 1e-9)
        assert deliveries[0] != 125.0  # the seeded error is nonzero

    def test_validation(self):
        engine = EventEngine()
        with pytest.raises(ValueError):
            SyncAssistedReleaseBuffer(
                engine,
                "mp0",
                pacing_gap=20.0,
                heartbeat_period=20.0,
                sync_clock=SynchronizedClock(),
                target_delay=0.0,
            )


def jitter_specs(n=4, seed=61):
    """Uncorrelated per-packet jitter: the case where plain DBO's
    beyond-horizon fairness degrades (§6.3.2's correlation argument in
    reverse)."""
    return [
        NetworkSpec(
            forward=UniformJitterLatency(10.0 + i, 6.0, seed=seed + 2 * i),
            reverse=UniformJitterLatency(10.0 + i, 6.0, seed=seed + 2 * i + 1),
        )
        for i in range(n)
    ]


class TestDeployment:
    RT_BEYOND = RaceResponseTime(4, low=35.0, high=39.0, gap=0.1, seed=5)

    def run_one(self, **kwargs):
        deployment = DBODeployment(
            jitter_specs(),
            params=DBOParams(delta=20.0),
            response_time_model=self.RT_BEYOND,
            seed=7,
            **kwargs,
        )
        return deployment.run(duration=15_000.0)

    def test_improves_beyond_horizon_fairness(self):
        plain = evaluate_fairness(self.run_one()).ratio
        assisted = evaluate_fairness(self.run_one(sync_target_c1=25.0)).ratio
        assert assisted > plain
        assert assisted > 0.99

    def test_lrtf_always_preserved(self):
        # Within-horizon trades stay guaranteed even with terrible sync.
        deployment = DBODeployment(
            jitter_specs(),
            params=DBOParams(delta=20.0),
            response_time_model=UniformResponseTime(low=5.0, high=19.0, seed=3),
            seed=7,
            sync_target_c1=25.0,
            sync_error=50.0,  # sync far worse than useful
            rb_clock_drift=0.0,
        )
        result = deployment.run(duration=15_000.0)
        assert lrtf_violations(result, delta=20.0) == []

    def test_counters_present(self):
        result = self.run_one(sync_target_c1=25.0)
        assert "sync_targets_met" in result.counters
        assert "sync_targets_missed" in result.counters

    def test_spike_degrades_gracefully_not_catastrophically(self):
        spike = StepLatency([(0.0, 0.0), (3000.0, 200.0), (5000.0, 0.0)])
        specs = jitter_specs()
        specs[0] = NetworkSpec(
            forward=CompositeLatency([ConstantLatency(10.0), spike]),
            reverse=ConstantLatency(10.0),
        )
        deployment = DBODeployment(
            specs,
            params=DBOParams(delta=20.0),
            response_time_model=UniformResponseTime(low=5.0, high=19.0, seed=3),
            seed=7,
            sync_target_c1=25.0,
            rb_clock_drift=0.0,
        )
        result = deployment.run(duration=15_000.0, drain=30_000.0)
        # Targets are missed during the spike, but LRTF never breaks.
        assert result.counters["sync_targets_missed"] > 0
        assert lrtf_violations(result, delta=20.0) == []
