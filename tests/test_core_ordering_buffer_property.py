"""Property-based tests for the ordering buffer's release safety.

The OB's contract: never release a trade unless it is provably safe —
every other participant's watermark strictly exceeds its stamp at the
moment of release — and release safe trades in global stamp order.
Hypothesis drives random (but protocol-consistent) event sequences:
per-participant stamps are monotone and arrive FIFO, exactly what the
network guarantees the OB.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delivery_clock import DeliveryClockStamp
from repro.core.ordering_buffer import OrderingBuffer
from repro.exchange.messages import Heartbeat, Side, TaggedTrade, TradeOrder

N_MPS = 3
MP_IDS = [f"mp{i}" for i in range(N_MPS)]


@st.composite
def event_sequence(draw):
    """A protocol-consistent interleaving of trades and heartbeats."""
    events = []
    point = {mp: 0 for mp in MP_IDS}
    elapsed = {mp: 0.0 for mp in MP_IDS}
    seq = {mp: 0 for mp in MP_IDS}
    t = 0.0
    for _ in range(draw(st.integers(10, 60))):
        t += draw(st.floats(min_value=0.1, max_value=5.0))
        mp = draw(st.sampled_from(MP_IDS))
        # Advance this MP's delivery clock state monotonically.
        if draw(st.booleans()):
            elapsed[mp] += draw(st.floats(min_value=0.01, max_value=8.0))
        else:
            point[mp] += draw(st.integers(1, 2))
            elapsed[mp] = draw(st.floats(min_value=0.0, max_value=1.0))
        stamp = DeliveryClockStamp(point[mp], elapsed[mp])
        if draw(st.booleans()):
            order = TradeOrder(mp_id=mp, trade_seq=seq[mp], side=Side.BUY, price=1.0)
            seq[mp] += 1
            events.append(("trade", mp, TaggedTrade(trade=order, clock=stamp), t))
        else:
            events.append(("hb", mp, Heartbeat(mp_id=mp, clock=stamp), t))
    return events


def drive(events):
    released = []
    watermark_history = []
    ob = OrderingBuffer(
        participants=MP_IDS,
        sink=lambda tagged, now: released.append((tagged, now)),
    )
    stamps_seen = {mp: [] for mp in MP_IDS}
    for kind, mp, payload, t in events:
        stamps_seen[mp].append(payload.clock)
        if kind == "trade":
            ob.on_tagged_trade(payload, 0.0, t)
        else:
            ob.on_heartbeat(payload, 0.0, t)
        watermark_history.append(
            {m: s.watermark for m, s in ob.states.items()}
        )
    return ob, released, watermark_history


@given(event_sequence())
@settings(max_examples=200, deadline=None)
def test_releases_are_globally_stamp_sorted(events):
    _, released, _ = drive(events)
    stamps = [tagged.clock for tagged, _ in released]
    assert stamps == sorted(stamps)


@given(event_sequence())
@settings(max_examples=200, deadline=None)
def test_release_only_when_provably_safe(events):
    """At release time, every *other* participant's watermark strictly
    exceeded the released trade's stamp."""
    ob, released, _ = drive(events)
    # Re-drive, checking the watermark condition at each release.
    released_iter = iter(released)
    ob2 = None

    checks = []

    def sink(tagged, now):
        for mp, state in ob2.states.items():
            if mp == tagged.trade.mp_id:
                continue
            checks.append(state.watermark is not None and state.watermark > tagged.clock)

    ob2 = OrderingBuffer(participants=MP_IDS, sink=sink)
    for kind, mp, payload, t in events:
        if kind == "trade":
            ob2.on_tagged_trade(payload, 0.0, t)
        else:
            ob2.on_heartbeat(payload, 0.0, t)
    assert all(checks)


@given(event_sequence())
@settings(max_examples=150, deadline=None)
def test_flush_completes_everything_once(events):
    ob, released, _ = drive(events)
    before = len(released)
    queued = ob.queue_depth
    flushed = ob.flush(1e9)
    assert flushed == queued
    assert len(released) == before + flushed
    keys = [tagged.trade.key for tagged, _ in released]
    assert len(keys) == len(set(keys))  # every trade released exactly once


@given(event_sequence())
@settings(max_examples=150, deadline=None)
def test_watermarks_monotone(events):
    _, _, history = drive(events)
    for mp in MP_IDS:
        values = [snap[mp] for snap in history if snap[mp] is not None]
        assert values == sorted(values)
