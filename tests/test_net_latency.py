"""Unit tests for the time-indexed latency models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.latency import (
    CloudLatencyModel,
    CompositeLatency,
    ConstantLatency,
    NormalJitterLatency,
    ScaledLatency,
    ShiftedLatency,
    SpikeSchedule,
    StepLatency,
    TraceLatency,
    UniformJitterLatency,
)

TIMES = st.floats(min_value=0.0, max_value=1e7, allow_nan=False)


class TestConstantLatency:
    def test_constant_everywhere(self):
        model = ConstantLatency(12.5)
        assert model.latency_at(0.0) == 12.5
        assert model.latency_at(1e9) == 12.5

    def test_mean(self):
        assert ConstantLatency(7.0).mean_estimate() == 7.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)


class TestUniformJitterLatency:
    @given(TIMES)
    def test_within_bounds(self, t):
        model = UniformJitterLatency(10.0, 4.0, seed=1)
        assert 10.0 <= model.latency_at(t) < 14.0

    def test_deterministic(self):
        model = UniformJitterLatency(10.0, 4.0, seed=1)
        assert model.latency_at(55.5) == model.latency_at(55.5)

    def test_same_slot_same_latency(self):
        model = UniformJitterLatency(10.0, 4.0, seed=1, slot=10.0)
        assert model.latency_at(20.1) == model.latency_at(29.9)

    def test_different_slots_usually_differ(self):
        model = UniformJitterLatency(10.0, 4.0, seed=1, slot=1.0)
        values = {model.latency_at(float(t)) for t in range(100)}
        assert len(values) > 50

    def test_mean_estimate(self):
        assert UniformJitterLatency(10.0, 4.0).mean_estimate() == 12.0

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformJitterLatency(-1.0, 1.0)
        with pytest.raises(ValueError):
            UniformJitterLatency(1.0, 1.0, slot=0.0)


class TestNormalJitterLatency:
    @given(TIMES)
    def test_never_below_base(self, t):
        model = NormalJitterLatency(5.0, 1.0, seed=2)
        assert model.latency_at(t) >= 5.0

    def test_mean_estimate_above_base(self):
        assert NormalJitterLatency(5.0, 1.0).mean_estimate() > 5.0

    def test_empirical_mean_matches_estimate(self):
        model = NormalJitterLatency(5.0, 1.0, seed=2)
        samples = [model.latency_at(float(t)) for t in range(20_000)]
        assert sum(samples) / len(samples) == pytest.approx(model.mean_estimate(), rel=0.05)


class TestSpikeSchedule:
    def test_zero_rate_contributes_nothing(self):
        schedule = SpikeSchedule(0.0, 100.0, 1000.0, seed=1)
        assert schedule.contribution_at(12345.0) == 0.0

    def test_contribution_non_negative(self):
        schedule = SpikeSchedule(100.0, 50.0, 500.0, seed=1)
        assert all(schedule.contribution_at(float(t)) >= 0.0 for t in range(0, 100_000, 997))

    def test_deterministic_and_order_independent(self):
        a = SpikeSchedule(50.0, 100.0, 1000.0, seed=7)
        b = SpikeSchedule(50.0, 100.0, 1000.0, seed=7)
        # Query b at a later time first; values must still agree.
        later_b = b.contribution_at(90_000.0)
        early_b = b.contribution_at(10_000.0)
        early_a = a.contribution_at(10_000.0)
        later_a = a.contribution_at(90_000.0)
        assert early_a == pytest.approx(early_b)
        assert later_a == pytest.approx(later_b)

    def test_decay_after_spike(self):
        schedule = SpikeSchedule(10.0, 200.0, 1000.0, seed=3)
        schedule._materialize(1_000_000.0)
        start, amplitude = schedule._spikes[0]
        at_peak = schedule.contribution_at(start)
        much_later = schedule.contribution_at(start + 20 * 1000.0)
        assert at_peak >= amplitude * 0.99
        assert much_later < at_peak * 0.01

    def test_negative_time_is_zero(self):
        schedule = SpikeSchedule(10.0, 200.0, 1000.0, seed=3)
        assert schedule.contribution_at(-5.0) == 0.0

    def test_amplitude_capped(self):
        schedule = SpikeSchedule(100.0, 50.0, 500.0, seed=4, amplitude_max_factor=2.0)
        schedule._materialize(1_000_000.0)
        assert all(a <= 100.0 for _, a in schedule._spikes)


class TestCloudLatencyModel:
    def test_at_least_base(self):
        model = CloudLatencyModel(base=13.5, jitter=1.5, seed=5)
        assert all(model.latency_at(float(t)) >= 13.5 for t in range(0, 50_000, 499))

    def test_mean_estimate_includes_spikes(self):
        quiet = CloudLatencyModel(base=10.0, jitter=0.0, spike_rate_per_second=0.0)
        spiky = CloudLatencyModel(base=10.0, jitter=0.0, spike_rate_per_second=100.0)
        assert spiky.mean_estimate() > quiet.mean_estimate()


class TestTraceLatency:
    def test_interpolates(self):
        model = TraceLatency([0.0, 10.0], [100.0, 200.0])
        assert model.latency_at(5.0) == pytest.approx(150.0)

    def test_endpoints(self):
        model = TraceLatency([0.0, 10.0], [100.0, 200.0])
        assert model.latency_at(0.0) == pytest.approx(100.0)

    def test_wraps_cyclically(self):
        model = TraceLatency([0.0, 10.0], [100.0, 200.0])
        assert model.latency_at(15.0) == pytest.approx(model.latency_at(5.0))

    def test_offset_slices(self):
        model = TraceLatency([0.0, 10.0, 20.0], [1.0, 2.0, 3.0], offset=10.0)
        assert model.latency_at(0.0) == pytest.approx(2.0)

    def test_scale_halves_rtt(self):
        model = TraceLatency([0.0, 10.0], [100.0, 200.0], scale=0.5)
        assert model.latency_at(0.0) == pytest.approx(50.0)

    def test_mean_estimate_trapezoid(self):
        model = TraceLatency([0.0, 10.0], [0.0, 10.0])
        assert model.mean_estimate() == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceLatency([0.0], [1.0])
        with pytest.raises(ValueError):
            TraceLatency([0.0, 0.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            TraceLatency([0.0, 1.0], [1.0])


class TestCombinators:
    def test_shifted(self):
        model = ShiftedLatency(ConstantLatency(10.0), 5.0)
        assert model.latency_at(0.0) == 15.0

    def test_shifted_clamps_at_zero(self):
        model = ShiftedLatency(ConstantLatency(3.0), -10.0)
        assert model.latency_at(0.0) == 0.0

    def test_scaled(self):
        model = ScaledLatency(ConstantLatency(10.0), 0.5)
        assert model.latency_at(0.0) == 5.0
        assert model.mean_estimate() == 5.0

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            ScaledLatency(ConstantLatency(1.0), -1.0)

    def test_composite_sums(self):
        model = CompositeLatency([ConstantLatency(3.0), ConstantLatency(4.0)])
        assert model.latency_at(1.0) == 7.0
        assert model.mean_estimate() == 7.0

    def test_composite_needs_components(self):
        with pytest.raises(ValueError):
            CompositeLatency([])

    def test_model_combinator_methods(self):
        base = ConstantLatency(10.0)
        assert base.shifted(2.0).latency_at(0.0) == 12.0
        assert base.scaled(0.5).latency_at(0.0) == 5.0


class TestStepLatency:
    def test_steps(self):
        model = StepLatency([(0.0, 10.0), (100.0, 50.0), (200.0, 10.0)])
        assert model.latency_at(50.0) == 10.0
        assert model.latency_at(100.0) == 50.0
        assert model.latency_at(150.0) == 50.0
        assert model.latency_at(250.0) == 10.0

    def test_before_first_step(self):
        model = StepLatency([(10.0, 5.0)])
        assert model.latency_at(0.0) == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            StepLatency([])
        with pytest.raises(ValueError):
            StepLatency([(0.0, 1.0), (0.0, 2.0)])
