"""Integration tests: OB failover, shard failure, and RB-crash timing.

The headline claim: with acks + retransmission and a standby OB that
inherits the release log, an OB crash loses **zero** trades end-to-end;
the ablation without retransmission shows the loss the paper accepts.
"""

import pytest

from repro.baselines.base import NetworkSpec
from repro.core.params import DBOParams
from repro.core.release_buffer import RetransmitPolicy
from repro.core.system import DBODeployment
from repro.net.latency import ConstantLatency


def quiet_specs(n=4):
    return [
        NetworkSpec(forward=ConstantLatency(10.0 + i), reverse=ConstantLatency(10.0 + i))
        for i in range(n)
    ]


CRASH_AT = 10_000.0
DURATION = 25_000.0


class TestOBFailover:
    def build(self, policy=None):
        deployment = DBODeployment(
            quiet_specs(), params=DBOParams(delta=20.0), seed=4,
            retransmit_policy=policy,
        )
        deployment.engine.schedule_at(CRASH_AT, deployment.failover_ob)
        return deployment

    def test_with_retransmission_zero_trades_lost(self):
        policy = RetransmitPolicy(timeout=500.0, backoff=2.0, max_retries=5)
        result = self.build(policy).run(duration=DURATION)
        # The crash DID destroy queued trades...
        assert result.counters["ob_failovers"] == 1
        assert result.counters["trades_lost_to_crash"] >= 1
        # ...but retransmission re-delivered every one of them.
        assert result.counters["trades_retransmitted"] >= 1
        assert result.counters["retransmits_abandoned"] == 0
        assert result.completion_ratio() == 1.0

    def test_ablation_without_retransmission_loses_trades(self):
        result = self.build(policy=None).run(duration=DURATION)
        assert result.counters["ob_failovers"] == 1
        assert result.counters["trades_lost_to_crash"] >= 1
        assert result.completion_ratio() < 1.0

    def test_failover_preserves_no_duplicates(self):
        # Retransmits that raced the failover must be deduped, not
        # double-submitted to the matching engine.
        policy = RetransmitPolicy(timeout=500.0)
        result = self.build(policy).run(duration=DURATION)
        keys = [
            (record.mp_id, record.trade_seq)
            for record in result.trades
        ]
        assert len(keys) == len(set(keys))

    def test_failover_requires_flat_ob(self):
        deployment = DBODeployment(
            quiet_specs(), params=DBOParams(delta=20.0), seed=4, n_ob_shards=2
        )
        deployment.run(duration=1_000.0)
        with pytest.raises(RuntimeError):
            deployment.failover_ob()


class TestShardFailure:
    def build(self, policy=None):
        deployment = DBODeployment(
            quiet_specs(), params=DBOParams(delta=20.0), seed=4,
            n_ob_shards=2, retransmit_policy=policy,
        )
        deployment.engine.schedule_at(
            CRASH_AT, lambda: deployment.fail_shard("shard-1")
        )
        return deployment

    def test_survivors_adopt_orphans_and_market_continues(self):
        policy = RetransmitPolicy(timeout=500.0, backoff=2.0, max_retries=5)
        result = self.build(policy).run(duration=DURATION)
        assert result.counters["shard_failures"] == 1
        assert result.completion_ratio() == 1.0

    def test_ablation_without_retransmission(self):
        result = self.build(policy=None).run(duration=DURATION)
        assert result.counters["shard_failures"] == 1
        # Whatever sat in the dead shard's queue stays lost.
        assert result.completion_ratio() <= 1.0

    def test_unknown_and_double_failure_rejected(self):
        deployment = DBODeployment(
            quiet_specs(), params=DBOParams(delta=20.0), seed=4, n_ob_shards=2
        )
        deployment.engine.schedule_at(
            CRASH_AT, lambda: deployment.fail_shard("shard-1")
        )
        deployment.run(duration=DURATION)
        with pytest.raises(KeyError):
            deployment.fail_shard("shard-99")
        with pytest.raises(RuntimeError):
            deployment.fail_shard("shard-1")  # already failed
        with pytest.raises(RuntimeError):
            deployment.fail_shard("shard-0")  # no survivors left


class TestRBCrashStragglerTiming:
    """§4.2.1: a crashed RB's participant is ejected via silent-straggler
    detection — and the ejection happens on the detection threshold, not
    immediately."""

    def run_with_threshold(self, threshold):
        deployment = DBODeployment(
            quiet_specs(),
            params=DBOParams(delta=20.0, straggler_threshold=threshold),
            seed=4,
        )
        deployment.engine.schedule_at(
            CRASH_AT, lambda: deployment.release_buffers[0].crash()
        )
        result = deployment.run(duration=DURATION)
        return deployment, result

    def test_dead_participant_ejected_after_threshold(self):
        deployment, result = self.run_with_threshold(threshold=1_000.0)
        assert result.counters["straggler_ejections"] >= 1
        assert "mp0" in deployment.ordering_buffer.straggler_ids()
        # The rest of the market finished its trades.
        others = [r for r in result.trades if r.mp_id != "mp0"]
        assert others

    def test_ejection_not_before_threshold(self):
        # With a threshold longer than the remaining run, the dead RB is
        # never ejected and the OB keeps waiting (stall semantics).
        deployment, result = self.run_with_threshold(threshold=100_000.0)
        assert result.counters.get("straggler_ejections", 0) == 0
        assert deployment.ordering_buffer.queue_depth >= 0  # no ejection path ran
        assert "mp0" not in deployment.ordering_buffer.straggler_ids()
