"""The probabilistic ordering scheme (``prob``) end to end.

Three layers, matching the claims the scheme makes:

* **buffer** — :class:`ProbOrderingBuffer` releases on horizon expiry in
  stamp order, counts every inversion, and survives crash/failover with
  its odometers intact;
* **deployment** — ``prob`` is a pinned, engine-independent sixth scheme
  whose digest is as stable as the five deterministic ones;
* **the trade-off** — on the canonical seed-5 comparison it beats DBO's
  p99 release latency, and its measured inversion rate (pooled Wilson CI
  across seeds) sits inside :func:`repro.theory.bounds.prob_ordering_bound`.
"""

from typing import Any, List, Tuple

import pytest

from repro.analysis.stats import wilson_interval
from repro.baselines.base import default_network_specs
from repro.core.delivery_clock import DeliveryClockStamp
from repro.core.params import AggregationTopology
from repro.exchange.messages import Side, TaggedTrade, TradeOrder
from repro.experiments.runner import run_scheme
from repro.metrics.latency import latency_stats
from repro.metrics.serialization import trade_ordering_digest
from repro.ordering.deployment import ProbDeployment, ProbOrderingBuffer
from repro.theory.bounds import prob_ordering_bound

# Pinned alongside the five deterministic schemes in
# tests/test_regression_digest.py: canonical comparison, horizon 6.0.
PROB_DIGEST = "6260448bc452317da9b0781ae17486551899a99f332be718684e26bb15507c39"

# The arrival-lag spread of default_network_specs: one-way bases are drawn
# from [10, 17) with jitter [0, 2), so two rivals' arrival lags differ by
# at most (17 + 2) - 10 = 9 µs.
SPREAD = 9.0
HORIZON = 6.0


def _run(scheme: str, seed: int = 5, **kwargs):
    return run_scheme(
        scheme,
        default_network_specs(4, seed=seed),
        duration=5000.0,
        seed=seed,
        **kwargs,
    )


# ----------------------------------------------------------------------
# Buffer unit tests


class FakeEngine:
    def __init__(self) -> None:
        self.now = 0.0
        self._wakes: List[Tuple[float, int, int, Any]] = []
        self._n = 0

    def schedule_at(self, when: float, fn, priority: int = 0, args=()) -> None:
        self._n += 1
        self._wakes.append((when, priority, self._n, (fn, args)))

    def run_until(self, t: float) -> None:
        self._wakes.sort()
        while self._wakes and self._wakes[0][0] <= t:
            when, _, _, (fn, args) = self._wakes.pop(0)
            self.now = max(self.now, when)
            fn(*args)
            self._wakes.sort()
        self.now = max(self.now, t)


def tagged(mp: str, seq: int, stamp: Tuple[int, float]) -> TaggedTrade:
    return TaggedTrade(
        trade=TradeOrder(mp_id=mp, trade_seq=seq, side=Side.BUY, price=1.0),
        clock=DeliveryClockStamp(*stamp),
    )


def make_buffer(horizon: float = 5.0):
    fake = FakeEngine()
    released: List[TaggedTrade] = []
    buffer = ProbOrderingBuffer(
        participants=["a", "b"],
        engine=fake,
        horizon=horizon,
        sink=lambda item, now: released.append(item),
    )
    return fake, buffer, released


class TestProbOrderingBuffer:
    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError):
            ProbOrderingBuffer(participants=["a"], engine=FakeEngine(), horizon=-1.0)

    def test_releases_exactly_at_horizon_expiry(self):
        fake, buffer, released = make_buffer(horizon=5.0)
        buffer.on_tagged_trade(tagged("a", 0, (1, 1.0)), 9.0, 10.0)
        fake.run_until(14.9)
        assert released == []
        fake.run_until(15.0)
        assert [item.trade.key for item in released] == [("a", 0)]
        assert buffer.ordering_inversions == 0
        assert buffer.trades_released == 1

    def test_due_trades_release_in_stamp_order(self):
        fake, buffer, released = make_buffer(horizon=5.0)
        # Larger stamp arrives first; both are due by t=16.
        buffer.on_tagged_trade(tagged("a", 0, (2, 0.0)), 9.0, 10.0)
        buffer.on_tagged_trade(tagged("b", 0, (1, 0.0)), 10.0, 11.0)
        fake.run_until(16.0)
        assert [item.trade.key for item in released] == [("b", 0), ("a", 0)]
        assert buffer.ordering_inversions == 0

    def test_late_small_stamp_counts_as_inversion(self):
        fake, buffer, released = make_buffer(horizon=5.0)
        buffer.on_tagged_trade(tagged("a", 0, (2, 0.0)), 9.0, 10.0)
        fake.run_until(15.0)  # (2, 0.0) released before the rival shows up
        buffer.on_tagged_trade(tagged("b", 0, (1, 0.0)), 10.0, 20.0)
        fake.run_until(25.0)
        assert [item.trade.key for item in released] == [("a", 0), ("b", 0)]
        assert buffer.ordering_inversions == 1

    def test_duplicates_still_ignored(self):
        fake, buffer, released = make_buffer(horizon=5.0)
        buffer.on_tagged_trade(tagged("a", 0, (1, 0.0)), 9.0, 10.0)
        buffer.on_tagged_trade(tagged("a", 0, (1, 0.0)), 9.0, 12.0)
        fake.run_until(30.0)
        assert len(released) == 1
        buffer.on_tagged_trade(tagged("a", 0, (1, 0.0)), 9.0, 31.0)
        fake.run_until(60.0)
        assert len(released) == 1
        assert buffer.trades_released == 1

    def test_flush_drains_and_keeps_inversion_accounting(self):
        fake, buffer, released = make_buffer(horizon=50.0)
        buffer.on_tagged_trade(tagged("a", 0, (2, 0.0)), 9.0, 10.0)
        buffer.on_tagged_trade(tagged("b", 0, (1, 0.0)), 10.0, 11.0)
        assert buffer.flush(12.0) == 2
        # Flush pops in stamp order, so no inversion here.
        assert [item.trade.key for item in released] == [("b", 0), ("a", 0)]
        assert buffer.ordering_inversions == 0
        assert not buffer._heap and not buffer._due

    def test_crash_clears_due_map(self):
        fake, buffer, _ = make_buffer(horizon=5.0)
        buffer.on_tagged_trade(tagged("a", 0, (1, 0.0)), 9.0, 10.0)
        assert buffer._due
        lost = buffer.crash()
        assert lost == 1
        assert not buffer._due
        # Stale horizon wakes after a crash must be harmless no-ops.
        fake.run_until(100.0)
        assert buffer.trades_released == 0

    def test_carry_over_counters_preserves_inversions_and_max(self):
        fake, old, released = make_buffer(horizon=5.0)
        old.on_tagged_trade(tagged("a", 0, (5, 0.0)), 9.0, 10.0)
        fake.run_until(15.0)
        old.on_tagged_trade(tagged("b", 0, (1, 0.0)), 10.0, 20.0)
        fake.run_until(25.0)
        assert old.ordering_inversions == 1

        _, new, new_released = make_buffer(horizon=5.0)
        new.carry_over_counters(old)
        assert new.ordering_inversions == 1
        # A post-failover release below the carried max is still an inversion.
        new.on_tagged_trade(tagged("b", 1, (2, 0.0)), 30.0, 31.0)
        new.flush(32.0)
        assert new.ordering_inversions == 2


# ----------------------------------------------------------------------
# Deployment surface


class TestProbDeployment:
    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError):
            ProbDeployment(default_network_specs(2, seed=3), horizon=-0.5)

    def test_sharded_ob_rejected(self):
        with pytest.raises(ValueError, match="non-sharded"):
            ProbDeployment(default_network_specs(2, seed=3), n_ob_shards=2)

    def test_aggregation_tree_rejected(self):
        with pytest.raises(ValueError, match="aggregation-tree"):
            ProbDeployment(
                default_network_specs(2, seed=3),
                topology=AggregationTopology(depth=1),
            )

    def test_scheme_metadata(self):
        deployment = ProbDeployment(default_network_specs(2, seed=3), seed=3)
        assert deployment.scheme_name == "prob"
        assert deployment.ordering_guarantee == "probabilistic"
        deployment.run(duration=500.0)
        assert isinstance(deployment.ordering_buffer, ProbOrderingBuffer)
        assert deployment.ordering_buffer.horizon == 6.0

    def test_counters_expose_inversions_and_releases(self):
        result = _run("prob", horizon=HORIZON)
        assert "ordering_inversions" in result.counters
        assert result.counters["ob_trades_released"] == 500.0


# ----------------------------------------------------------------------
# Pinned behaviour and the measured trade-off


class TestProbPinnedBehaviour:
    def test_golden_digest(self):
        result = _run("prob", horizon=HORIZON)
        assert sum(1 for t in result.trades if t.position is not None) == 500
        assert trade_ordering_digest(result) == PROB_DIGEST

    def test_digest_is_engine_independent(self):
        result = _run("prob", horizon=HORIZON, engine="wheel")
        assert trade_ordering_digest(result) == PROB_DIGEST

    def test_wide_horizon_reproduces_dbo_order(self):
        # h ≥ the arrival-lag spread ⇒ every rival is in the buffer by
        # release time ⇒ DBO's stamp order, zero inversions.
        result = _run("prob", horizon=4 * SPREAD)
        assert result.counters["ordering_inversions"] == 0.0

    def test_beats_dbo_p99_release_latency(self):
        prob = latency_stats(_run("prob", horizon=HORIZON))
        dbo = latency_stats(_run("dbo"))
        assert prob.p99 < dbo.p99
        assert prob.p50 < dbo.p50

    def test_inversion_rate_within_theory_bound(self):
        """Pooled Wilson CI of the measured inversion rate vs the model.

        Seeds vary both the network draw and the run substreams; the
        per-release inversion trials pool into one binomial.  The 95 %
        upper bound must sit inside ε = prob_ordering_bound(h, S, n-1)
        — and the scheme must actually be probabilistic (inversions > 0
        somewhere), or the bound is trivially satisfied.
        """
        pairs = []
        for seed in range(5, 11):
            result = _run("prob", seed=seed, horizon=HORIZON)
            pairs.append(
                (
                    int(result.counters["ordering_inversions"]),
                    int(result.counters["ob_trades_released"]),
                )
            )
        inversions = sum(p[0] for p in pairs)
        releases = sum(p[1] for p in pairs)
        assert inversions > 0
        _, upper = wilson_interval(inversions, releases, confidence=0.95)
        epsilon = prob_ordering_bound(HORIZON, SPREAD, competitors=3)
        assert upper <= epsilon


# ----------------------------------------------------------------------
# The theory bound itself


class TestProbOrderingBound:
    def test_zero_horizon_single_rival_is_half(self):
        assert prob_ordering_bound(0.0, 9.0) == pytest.approx(0.5)

    def test_horizon_covering_spread_is_exact_order(self):
        assert prob_ordering_bound(9.0, 9.0) == 0.0
        assert prob_ordering_bound(20.0, 9.0, competitors=7) == 0.0

    def test_union_bound_scales_with_competitors(self):
        single = prob_ordering_bound(6.0, 9.0)
        assert prob_ordering_bound(6.0, 9.0, competitors=3) == pytest.approx(
            3 * single
        )
        assert prob_ordering_bound(6.0, 9.0, competitors=3) == pytest.approx(1 / 6)

    def test_capped_at_one(self):
        assert prob_ordering_bound(0.0, 9.0, competitors=100) == 1.0

    def test_monotone_decreasing_in_horizon(self):
        values = [prob_ordering_bound(h, 9.0, competitors=2) for h in range(10)]
        assert values == sorted(values, reverse=True)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"horizon": -1.0, "spread": 9.0},
            {"horizon": 1.0, "spread": 0.0},
            {"horizon": 1.0, "spread": -2.0},
            {"horizon": 1.0, "spread": 9.0, "competitors": 0},
        ],
    )
    def test_invalid_arguments_rejected(self, kwargs):
        with pytest.raises(ValueError):
            prob_ordering_bound(**kwargs)
