"""Tests for market orders, IOC/FOK time-in-force, and cancel-replace."""

import pytest

from repro.exchange.messages import OrderType, Side, TimeInForce, TradeOrder
from repro.exchange.order_book import LimitOrderBook


def order(mp, seq, side, price=0.0, qty=1, otype=OrderType.LIMIT, tif=TimeInForce.GTC):
    return TradeOrder(
        mp_id=mp,
        trade_seq=seq,
        side=side,
        price=price,
        quantity=qty,
        order_type=otype,
        time_in_force=tif,
    )


class TestDefaults:
    def test_orders_default_to_limit_gtc(self):
        o = TradeOrder(mp_id="a", trade_seq=0)
        assert o.order_type is OrderType.LIMIT
        assert o.time_in_force is TimeInForce.GTC


class TestMarketOrders:
    def test_market_order_crosses_at_any_price(self):
        book = LimitOrderBook()
        book.submit(order("a", 0, Side.SELL, price=999.0, qty=2))
        fills = book.submit(
            order("b", 0, Side.BUY, qty=2, otype=OrderType.MARKET, tif=TimeInForce.IOC)
        )
        assert sum(f.quantity for f in fills) == 2
        assert fills[0].price == 999.0

    def test_market_order_walks_levels(self):
        book = LimitOrderBook()
        book.submit(order("a", 0, Side.SELL, price=10.0, qty=1))
        book.submit(order("a", 1, Side.SELL, price=20.0, qty=1))
        fills = book.submit(
            order("b", 0, Side.BUY, qty=2, otype=OrderType.MARKET, tif=TimeInForce.IOC)
        )
        assert [f.price for f in fills] == [10.0, 20.0]

    def test_market_remainder_never_rests(self):
        book = LimitOrderBook()
        book.submit(order("a", 0, Side.SELL, price=10.0, qty=1))
        book.submit(
            order("b", 0, Side.BUY, qty=5, otype=OrderType.MARKET, tif=TimeInForce.IOC)
        )
        assert book.best_bid() is None

    def test_market_gtc_rejected(self):
        book = LimitOrderBook()
        with pytest.raises(ValueError):
            book.submit(order("b", 0, Side.BUY, qty=1, otype=OrderType.MARKET))


class TestIOC:
    def test_ioc_fills_what_it_can_then_dies(self):
        book = LimitOrderBook()
        book.submit(order("a", 0, Side.SELL, price=10.0, qty=3))
        fills = book.submit(
            order("b", 0, Side.BUY, price=10.0, qty=5, tif=TimeInForce.IOC)
        )
        assert sum(f.quantity for f in fills) == 3
        assert book.resting_quantity(("b", 0)) == 0
        assert book.best_bid() is None

    def test_ioc_no_liquidity_no_fill(self):
        book = LimitOrderBook()
        fills = book.submit(
            order("b", 0, Side.BUY, price=10.0, qty=5, tif=TimeInForce.IOC)
        )
        assert fills == []
        assert book.best_bid() is None


class TestFOK:
    def test_fok_fills_fully_when_possible(self):
        book = LimitOrderBook()
        book.submit(order("a", 0, Side.SELL, price=10.0, qty=3))
        book.submit(order("a", 1, Side.SELL, price=11.0, qty=3))
        fills = book.submit(
            order("b", 0, Side.BUY, price=11.0, qty=5, tif=TimeInForce.FOK)
        )
        assert sum(f.quantity for f in fills) == 5

    def test_fok_kills_when_insufficient(self):
        book = LimitOrderBook()
        book.submit(order("a", 0, Side.SELL, price=10.0, qty=3))
        fills = book.submit(
            order("b", 0, Side.BUY, price=10.0, qty=5, tif=TimeInForce.FOK)
        )
        assert fills == []
        # Resting liquidity untouched.
        assert book.resting_quantity(("a", 0)) == 3

    def test_fok_respects_limit_price(self):
        book = LimitOrderBook()
        book.submit(order("a", 0, Side.SELL, price=10.0, qty=3))
        book.submit(order("a", 1, Side.SELL, price=12.0, qty=3))
        # 5 lots exist but only 3 within the limit: kill.
        fills = book.submit(
            order("b", 0, Side.BUY, price=10.0, qty=5, tif=TimeInForce.FOK)
        )
        assert fills == []

    def test_market_fok(self):
        book = LimitOrderBook()
        book.submit(order("a", 0, Side.SELL, price=50.0, qty=5))
        fills = book.submit(
            order("b", 0, Side.BUY, qty=5, otype=OrderType.MARKET, tif=TimeInForce.FOK)
        )
        assert sum(f.quantity for f in fills) == 5


class TestReplace:
    def test_quantity_reduction_keeps_priority(self):
        book = LimitOrderBook()
        book.submit(order("a", 0, Side.SELL, price=10.0, qty=5))
        book.submit(order("c", 0, Side.SELL, price=10.0, qty=5))
        book.replace(("a", 0), order("a", 1, Side.SELL, price=10.0, qty=2))
        fills = book.submit(order("b", 0, Side.BUY, price=10.0, qty=2))
        # The reduced order kept its front-of-queue spot.
        assert fills[0].sell_key == ("a", 1)

    def test_price_change_loses_priority(self):
        book = LimitOrderBook()
        book.submit(order("a", 0, Side.SELL, price=10.0, qty=2))
        book.submit(order("c", 0, Side.SELL, price=9.5, qty=2))
        book.replace(("a", 0), order("a", 1, Side.SELL, price=9.5, qty=2))
        fills = book.submit(order("b", 0, Side.BUY, price=9.5, qty=2))
        assert fills[0].sell_key == ("c", 0)  # c was at 9.5 first

    def test_quantity_increase_loses_priority(self):
        book = LimitOrderBook()
        book.submit(order("a", 0, Side.SELL, price=10.0, qty=2))
        book.submit(order("c", 0, Side.SELL, price=10.0, qty=2))
        book.replace(("a", 0), order("a", 1, Side.SELL, price=10.0, qty=9))
        fills = book.submit(order("b", 0, Side.BUY, price=10.0, qty=2))
        assert fills[0].sell_key == ("c", 0)

    def test_replace_can_cross(self):
        book = LimitOrderBook()
        book.submit(order("a", 0, Side.SELL, price=11.0, qty=1))
        book.submit(order("b", 0, Side.BUY, price=10.0, qty=1))
        fills = book.replace(("b", 0), order("b", 1, Side.BUY, price=11.0, qty=1))
        assert len(fills) == 1

    def test_replace_unknown_rejected(self):
        book = LimitOrderBook()
        with pytest.raises(KeyError):
            book.replace(("a", 0), order("a", 1, Side.SELL, price=10.0))

    def test_replaced_key_tracks_new_order(self):
        book = LimitOrderBook()
        book.submit(order("a", 0, Side.SELL, price=10.0, qty=5))
        book.replace(("a", 0), order("a", 1, Side.SELL, price=10.0, qty=2))
        assert ("a", 0) not in book
        assert book.resting_quantity(("a", 1)) == 2
