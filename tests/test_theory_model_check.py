"""Exhaustive model-checking of the OB release rule on small instances."""

import math

import pytest

from repro.theory.model_check import (
    Message,
    ModelCheckResult,
    check_ordering_buffer,
    enumerate_interleavings,
)


def trade(mp, point, elapsed, seq=0):
    return Message(mp, "trade", point, elapsed, seq)


def hb(mp, point, elapsed):
    return Message(mp, "hb", point, elapsed)


class TestEnumeration:
    def test_counts_are_multinomial(self):
        a = [trade("a", 0, 1.0, 0), hb("a", 0, 5.0)]
        b = [hb("b", 0, 2.0), hb("b", 0, 6.0), hb("b", 0, 9.0)]
        count = sum(1 for _ in enumerate_interleavings([a, b]))
        assert count == math.comb(5, 2)  # 5! / (2! 3!)

    def test_fifo_preserved_in_every_interleaving(self):
        a = [trade("a", 0, 1.0, 0), trade("a", 0, 2.0, 1)]
        b = [hb("b", 0, 3.0)]
        for order in enumerate_interleavings([a, b]):
            a_positions = [i for i, m in enumerate(order) if m.mp_id == "a"]
            assert a_positions == sorted(a_positions)
            seqs = [m.seq for m in order if m.mp_id == "a"]
            assert seqs == [0, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            check_ordering_buffer([[trade("a", 0, 5.0), trade("a", 0, 1.0, 1)]])
        with pytest.raises(ValueError):
            check_ordering_buffer([[trade("a", 0, 1.0), trade("b", 0, 2.0)]])
        with pytest.raises(ValueError):
            check_ordering_buffer([])


class TestExhaustiveCorrectness:
    def test_two_participants_trades_and_heartbeats(self):
        """All (7 choose 3) = 35 interleavings of a 2-MP scenario."""
        a = [trade("a", 0, 2.0, 0), trade("a", 0, 7.0, 1), hb("a", 1, 0.5)]
        b = [hb("b", 0, 1.0), trade("b", 0, 5.0, 0), hb("b", 0, 9.0), hb("b", 1, 3.0)]
        result = check_ordering_buffer([a, b])
        assert result.interleavings == math.comb(7, 3)
        assert result.ok, result

    def test_three_participants(self):
        """3-channel scenario: 9!/(3!3!3!) = 1680 interleavings."""
        a = [trade("a", 0, 1.0, 0), hb("a", 0, 6.0), hb("a", 1, 2.0)]
        b = [trade("b", 0, 3.0, 0), hb("b", 1, 0.1), hb("b", 1, 5.0)]
        c = [hb("c", 0, 4.0), trade("c", 1, 1.5, 0), hb("c", 1, 8.0)]
        result = check_ordering_buffer([a, b, c])
        assert result.interleavings == 1680
        assert result.ok, result

    def test_equal_stamps_across_participants(self):
        """Exact stamp ties: strictness must hold everything until a
        strictly greater proof arrives — still safe in every order."""
        a = [trade("a", 0, 5.0, 0), hb("a", 0, 5.0), hb("a", 1, 0.0)]
        b = [trade("b", 0, 5.0, 0), hb("b", 0, 5.0), hb("b", 1, 0.0)]
        result = check_ordering_buffer([a, b])
        assert result.ok, result

    def test_trades_only_no_heartbeats(self):
        """Trades alone act as progress proofs; liveness needs the final
        heartbeat round, which the checker provides."""
        a = [trade("a", 0, 1.0, 0), trade("a", 0, 4.0, 1)]
        b = [trade("b", 0, 2.0, 0), trade("b", 0, 3.0, 1)]
        result = check_ordering_buffer([a, b])
        assert result.interleavings == math.comb(4, 2)
        assert result.ok, result

    def test_point_id_jumps(self):
        a = [trade("a", 0, 19.0, 0), trade("a", 3, 0.5, 1), hb("a", 7, 0.0)]
        b = [hb("b", 2, 0.0), trade("b", 5, 1.0, 0), hb("b", 9, 0.0)]
        result = check_ordering_buffer([a, b])
        assert result.ok, result


class TestResultObject:
    def test_ok_flag(self):
        good = ModelCheckResult(10, 0, 0, 0)
        bad = ModelCheckResult(10, 1, 0, 0)
        assert good.ok and not bad.ok
