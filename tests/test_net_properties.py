"""Property-based tests for the network substrate (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.latency import (
    CompositeLatency,
    ConstantLatency,
    StepLatency,
    TraceLatency,
    UniformJitterLatency,
)
from repro.net.link import Link, LossyLink
from repro.sim.engine import EventEngine


@st.composite
def latency_model(draw):
    kind = draw(st.sampled_from(["constant", "jitter", "step", "trace"]))
    base = draw(st.floats(min_value=0.1, max_value=100.0))
    if kind == "constant":
        return ConstantLatency(base)
    if kind == "jitter":
        jitter = draw(st.floats(min_value=0.0, max_value=50.0))
        return UniformJitterLatency(base, jitter, seed=draw(st.integers(0, 1000)))
    if kind == "step":
        steps = [(0.0, base)]
        t = 0.0
        for _ in range(draw(st.integers(1, 4))):
            t += draw(st.floats(min_value=1.0, max_value=500.0))
            steps.append((t, draw(st.floats(min_value=0.1, max_value=300.0))))
        return StepLatency(steps)
    times = [0.0, 100.0, 250.0, 400.0]
    values = [draw(st.floats(min_value=0.1, max_value=300.0)) for _ in times]
    return TraceLatency(times, values, offset=draw(st.floats(0.0, 400.0)))


send_times = st.lists(
    st.floats(min_value=0.0, max_value=5000.0), min_size=1, max_size=40
).map(sorted)


@given(latency_model(), send_times)
@settings(max_examples=150, deadline=None)
def test_link_arrivals_are_fifo(model, times):
    """In-order delivery: arrivals never decrease, whatever the model."""
    engine = EventEngine()
    arrivals = []
    link = Link(engine, model, handler=lambda m, s, a: arrivals.append(a))
    for index, t in enumerate(times):
        engine.schedule_at(t, lambda t=t, i=index: link.send(i))
    engine.run()
    assert len(arrivals) == len(times)
    assert arrivals == sorted(arrivals)


@given(latency_model(), send_times)
@settings(max_examples=100, deadline=None)
def test_link_arrival_never_before_send(model, times):
    engine = EventEngine()
    records = []
    link = Link(engine, model, handler=lambda m, s, a: records.append((s, a)))
    for index, t in enumerate(times):
        engine.schedule_at(t, lambda t=t, i=index: link.send(i))
    engine.run()
    for send, arrival in records:
        assert arrival >= send


@given(latency_model(), send_times)
@settings(max_examples=100, deadline=None)
def test_latency_models_are_time_deterministic(model, times):
    """latency_at is a pure function: querying twice (and out of order)
    gives identical values — the property the Max-RTT bound relies on."""
    forward = [model.latency_at(t) for t in times]
    backward = [model.latency_at(t) for t in reversed(times)]
    assert forward == list(reversed(backward))
    assert all(v >= 0.0 for v in forward)


@given(
    latency_model(),
    send_times,
    st.floats(min_value=0.0, max_value=0.5),
    st.integers(0, 1000),
)
@settings(max_examples=100, deadline=None)
def test_lossy_link_conserves_messages(model, times, loss, seed):
    """Every sent message arrives exactly once (normal or recovered)."""
    engine = EventEngine()
    normal, recovered = [], []
    link = LossyLink(
        engine,
        model,
        loss_probability=loss,
        recovery_delay=100.0,
        seed=seed,
        handler=lambda m, s, a: normal.append(m),
        loss_handler=lambda m, s, a: recovered.append(m),
    )
    for index, t in enumerate(times):
        engine.schedule_at(t, lambda i=index: link.send(i))
    engine.run()
    assert sorted(normal + recovered) == list(range(len(times)))
    assert link.packets_lost == len(recovered)
