"""Tests for the dependency-free terminal plotter."""

import pytest

from repro.metrics.ascii_plot import ascii_plot


def test_single_series_renders():
    text = ascii_plot({"line": [(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]}, width=20, height=5)
    lines = text.splitlines()
    assert "* line" in lines[0]
    assert any("*" in line for line in lines[1:])


def test_markers_differ_per_series():
    text = ascii_plot(
        {"a": [(0.0, 0.0)], "b": [(1.0, 1.0)]}, width=20, height=5
    )
    assert "* a" in text and "o b" in text


def test_extremes_mapped_to_corners():
    text = ascii_plot({"s": [(0.0, 0.0), (10.0, 5.0)]}, width=30, height=6)
    rows = [line for line in text.splitlines() if "|" in line]
    # Max y in the top row, min y in the bottom row.
    assert "*" in rows[0]
    assert "*" in rows[-1]


def test_axis_labels_present():
    text = ascii_plot({"s": [(2.0, 7.0), (12.0, 42.0)]}, width=25, height=5)
    assert "42" in text
    assert "7" in text
    assert "12" in text


def test_constant_series_does_not_divide_by_zero():
    text = ascii_plot({"flat": [(0.0, 5.0), (1.0, 5.0)]}, width=20, height=5)
    assert "*" in text


def test_title_and_labels():
    text = ascii_plot(
        {"s": [(0.0, 1.0)]}, width=20, height=5, title="T", x_label="time", y_label="lat"
    )
    assert text.splitlines()[0] == "T"
    assert "lat vs time" in text


def test_empty_rejected():
    with pytest.raises(ValueError):
        ascii_plot({})
    with pytest.raises(ValueError):
        ascii_plot({"s": []})


def test_too_small_rejected():
    with pytest.raises(ValueError):
        ascii_plot({"s": [(0.0, 1.0)]}, width=5, height=2)
