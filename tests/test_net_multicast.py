"""Unit tests for the multicast fan-out."""

import pytest

from repro.net.latency import ConstantLatency
from repro.net.link import Link
from repro.net.multicast import MulticastGroup
from repro.sim.engine import EventEngine


def build_group(engine, latencies):
    group = MulticastGroup()
    inboxes = {}
    for member_id, latency in latencies.items():
        inbox = []
        inboxes[member_id] = inbox
        link = Link(
            engine,
            ConstantLatency(latency),
            handler=lambda m, s, a, inbox=inbox: inbox.append((m, a)),
        )
        group.add_member(member_id, link)
    return group, inboxes


def test_publish_reaches_every_member():
    engine = EventEngine()
    group, inboxes = build_group(engine, {"a": 1.0, "b": 2.0})
    group.publish("tick")
    engine.run()
    assert inboxes["a"] == [("tick", 1.0)]
    assert inboxes["b"] == [("tick", 2.0)]


def test_publish_returns_arrival_times():
    engine = EventEngine()
    group, _ = build_group(engine, {"a": 1.0, "b": 2.0})
    arrivals = group.publish("tick")
    assert arrivals == {"a": 1.0, "b": 2.0}


def test_duplicate_member_rejected():
    engine = EventEngine()
    group, _ = build_group(engine, {"a": 1.0})
    with pytest.raises(ValueError):
        group.add_member("a", Link(engine, ConstantLatency(1.0), handler=lambda *a: None))


def test_remove_member():
    engine = EventEngine()
    group, inboxes = build_group(engine, {"a": 1.0, "b": 2.0})
    group.remove_member("b")
    group.publish("tick")
    engine.run()
    assert inboxes["b"] == []
    assert group.member_ids == ["a"]


def test_remove_unknown_member_raises():
    engine = EventEngine()
    group, _ = build_group(engine, {"a": 1.0})
    with pytest.raises(KeyError):
        group.remove_member("zzz")


def test_publish_without_members_raises():
    group = MulticastGroup()
    with pytest.raises(RuntimeError):
        group.publish("tick")


def test_message_counter():
    engine = EventEngine()
    group, _ = build_group(engine, {"a": 1.0})
    group.publish("x")
    group.publish("y")
    assert group.messages_published == 2


def test_link_for_returns_member_link():
    engine = EventEngine()
    group, _ = build_group(engine, {"a": 1.0})
    assert group.link_for("a").latency_model.latency == 1.0
