"""Tests for the executable theory: impossibility constructions and bounds."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.base import NetworkSpec, default_network_specs
from repro.baselines.direct import DirectDeployment
from repro.core.params import DBOParams
from repro.core.system import DBODeployment
from repro.net.latency import ConstantLatency, UniformJitterLatency
from repro.theory.bounds import (
    corollary1_condition_holds,
    lemma2_counterexample,
    theorem3_lmin,
    theorem4_pair_guaranteed,
)
from repro.theory.fairness_defs import (
    causality_condition_violations,
    lrtf_violations,
    response_time_fairness_violations,
)


class TestLemma2:
    def test_default_construction_is_contradiction(self):
        scenario = lemma2_counterexample()
        assert scenario.is_contradiction

    @given(
        st.floats(min_value=0.1, max_value=100.0),
        st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(max_examples=200)
    def test_construction_works_for_any_gap_pair(self, c1, extra):
        scenario = lemma2_counterexample(c1=c1, c2=c1 + extra)
        assert scenario.case1_requires_i_after_j
        assert scenario.case2_requires_i_before_j
        assert scenario.is_contradiction

    def test_requires_c1_below_c2(self):
        with pytest.raises(ValueError):
            lemma2_counterexample(c1=5.0, c2=5.0)


class TestCorollary1:
    def test_equal_schedules_pass(self):
        deliveries = {
            "a": {0: 10.0, 1: 15.0, 2: 40.0},
            "b": {0: 20.0, 1: 25.0, 2: 50.0},
        }
        assert corollary1_condition_holds(deliveries, delta=20.0)

    def test_unequal_close_gaps_fail(self):
        deliveries = {
            "a": {0: 10.0, 1: 15.0},   # gap 5 < δ
            "b": {0: 20.0, 1: 29.0},   # gap 9 ≠ 5
        }
        assert not corollary1_condition_holds(deliveries, delta=20.0)

    def test_unequal_wide_gaps_allowed(self):
        deliveries = {
            "a": {0: 10.0, 1: 40.0},   # gap 30 > δ
            "b": {0: 20.0, 1: 60.0},   # gap 40 > δ: no constraint
        }
        assert corollary1_condition_holds(deliveries, delta=20.0)

    def test_single_participant_trivially_holds(self):
        assert corollary1_condition_holds({"a": {0: 1.0, 1: 2.0}}, delta=20.0)

    def test_dbo_delivery_schedule_satisfies_condition(self):
        """Batching + pacing must satisfy the Corollary 1 condition."""
        specs = default_network_specs(3, seed=21)
        deployment = DBODeployment(specs, params=DBOParams(delta=20.0), seed=1)
        result = deployment.run(duration=3000.0)
        # Points in one batch share delivery times exactly; across batches
        # gaps exceed δ (up to clock-drift rescaling of the enforced gap).
        assert corollary1_condition_holds(
            result.delivery_times, delta=20.0 * (1 - 2e-4), tolerance=1e-6
        )

    def test_direct_delivery_violates_condition_under_jitter(self):
        specs = [
            NetworkSpec(
                forward=UniformJitterLatency(10.0, 8.0, seed=1),
                reverse=ConstantLatency(5.0),
            ),
            NetworkSpec(
                forward=UniformJitterLatency(10.0, 8.0, seed=2),
                reverse=ConstantLatency(5.0),
            ),
        ]
        from repro.exchange.feed import FeedConfig

        # Data every 10 µs: consecutive deliveries are < δ apart, so the
        # condition bites — and jitter makes the gaps unequal.
        deployment = DirectDeployment(specs, feed_config=FeedConfig(interval=10.0))
        result = deployment.run(duration=3000.0)
        assert not corollary1_condition_holds(result.delivery_times, delta=20.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            corollary1_condition_holds({}, delta=0.0)


class TestTheorem3:
    def test_lmin_is_max(self):
        assert theorem3_lmin([10.0, 30.0, 20.0]) == 30.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            theorem3_lmin([])


class TestTheorem4:
    def test_guaranteed_when_margins_clear_bounds(self):
        assert theorem4_pair_guaranteed(
            rt_fast=5.0, rt_slow=12.0, delta=20.0, bh_fast=3.0, bl_slow=1.0
        )

    def test_not_guaranteed_when_margin_within_variability(self):
        # RT gap 2 < Bh - Bl = 4.
        assert not theorem4_pair_guaranteed(
            rt_fast=5.0, rt_slow=7.0, delta=20.0, bh_fast=5.0, bl_slow=1.0
        )

    def test_not_guaranteed_near_horizon(self):
        # RT must be below δ - Bh.
        assert not theorem4_pair_guaranteed(
            rt_fast=18.0, rt_slow=30.0, delta=20.0, bh_fast=3.0, bl_slow=1.0
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            theorem4_pair_guaranteed(1.0, 2.0, delta=0.0, bh_fast=1.0, bl_slow=1.0)
        with pytest.raises(ValueError):
            theorem4_pair_guaranteed(1.0, 2.0, delta=5.0, bh_fast=-1.0, bl_slow=1.0)


class TestFairnessDefs:
    def test_dbo_run_has_no_violations(self):
        specs = default_network_specs(4, seed=22)
        deployment = DBODeployment(specs, seed=2)
        result = deployment.run(duration=3000.0)
        assert lrtf_violations(result, delta=20.0) == []
        assert causality_condition_violations(result) == []

    def test_direct_run_has_violations_on_skewed_network(self):
        specs = [
            NetworkSpec(forward=ConstantLatency(5.0), reverse=ConstantLatency(5.0)),
            NetworkSpec(forward=ConstantLatency(25.0), reverse=ConstantLatency(25.0)),
        ]
        deployment = DirectDeployment(specs)
        result = deployment.run(duration=3000.0)
        violations = response_time_fairness_violations(result)
        assert violations
        text = str(violations[0])
        assert "ordered at" in text

    def test_lrtf_validation(self):
        specs = default_network_specs(2, seed=23)
        deployment = DBODeployment(specs, seed=3)
        result = deployment.run(duration=1000.0)
        with pytest.raises(ValueError):
            lrtf_violations(result, delta=0.0)
