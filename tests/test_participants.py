"""Unit tests for participants, strategies, and response-time models."""

import pytest

from repro.exchange.messages import MarketDataPoint, Side
from repro.participants.mp import MarketParticipant
from repro.participants.response_time import (
    FixedResponseTime,
    RaceResponseTime,
    SpeedTieredResponseTime,
    UniformResponseTime,
)
from repro.participants.strategies import MarketMaker, MomentumTaker, SpeedRacer
from repro.sim.engine import EventEngine


def point(pid, t=0.0, price=100.0, opportunity=True):
    return MarketDataPoint(
        point_id=pid, generation_time=t, price=price, is_opportunity=opportunity
    )


class TestResponseTimeModels:
    def test_uniform_bounds_and_determinism(self):
        model = UniformResponseTime(low=5.0, high=20.0, seed=1)
        values = [model.response_time(0, i) for i in range(500)]
        assert all(5.0 <= v < 20.0 for v in values)
        assert values == [model.response_time(0, i) for i in range(500)]

    def test_uniform_varies_across_participants(self):
        model = UniformResponseTime(seed=1)
        assert model.response_time(0, 7) != model.response_time(1, 7)

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            UniformResponseTime(low=10.0, high=5.0)

    def test_fixed(self):
        model = FixedResponseTime(7.0)
        assert model.response_time(3, 99) == 7.0
        with pytest.raises(ValueError):
            FixedResponseTime(-1.0)

    def test_tiered_orders_participants(self):
        model = SpeedTieredResponseTime(base=5.0, tier_gap=2.0, jitter=0.0)
        assert model.response_time(0, 0) < model.response_time(1, 0) < model.response_time(2, 0)

    def test_tiered_jitter_bounded(self):
        model = SpeedTieredResponseTime(base=5.0, tier_gap=1.0, jitter=0.5, seed=2)
        for i in range(100):
            rt = model.response_time(0, i)
            assert 5.0 <= rt < 5.5

    def test_race_ranks_are_permutation(self):
        model = RaceResponseTime(6, gap=0.5, seed=3)
        for pid in range(20):
            ranks = sorted(model.rank(i, pid) for i in range(6))
            assert ranks == list(range(6))

    def test_race_rts_spaced_by_gap(self):
        model = RaceResponseTime(4, gap=0.25, seed=4)
        rts = sorted(model.response_time(i, 11) for i in range(4))
        diffs = [b - a for a, b in zip(rts, rts[1:])]
        assert diffs == pytest.approx([0.25, 0.25, 0.25])

    def test_race_base_in_range(self):
        model = RaceResponseTime(4, low=5.0, high=20.0, gap=0.1, seed=5)
        for pid in range(50):
            fastest = min(model.response_time(i, pid) for i in range(4))
            assert 5.0 <= fastest < 20.0

    def test_race_permutation_varies_by_point(self):
        model = RaceResponseTime(5, gap=1.0, seed=6)
        perms = {tuple(model.rank(i, pid) for i in range(5)) for pid in range(30)}
        assert len(perms) > 5

    def test_race_validation(self):
        with pytest.raises(ValueError):
            RaceResponseTime(0)
        with pytest.raises(ValueError):
            RaceResponseTime(2, gap=0.0)
        with pytest.raises(ValueError):
            RaceResponseTime(2).rank(5, 0)


class TestStrategies:
    def test_speed_racer_one_intent_per_opportunity(self):
        racer = SpeedRacer(seed=1)
        assert len(racer.on_point(point(0))) == 1
        assert racer.on_point(point(1, opportunity=False)) == []

    def test_speed_racer_alternates_sides_eventually(self):
        racer = SpeedRacer(seed=1)
        sides = {racer.on_point(point(i))[0].side for i in range(50)}
        assert sides == {Side.BUY, Side.SELL}

    def test_market_maker_quotes_both_sides(self):
        maker = MarketMaker(half_spread=0.5, quantity=10)
        intents = maker.on_point(point(0, price=100.0))
        assert len(intents) == 2
        buy = next(i for i in intents if i.side is Side.BUY)
        sell = next(i for i in intents if i.side is Side.SELL)
        assert buy.price == 99.5
        assert sell.price == 100.5

    def test_momentum_taker_follows_moves(self):
        taker = MomentumTaker(threshold=0.0, quantity=1)
        assert taker.on_point(point(0, price=100.0)) == []
        up = taker.on_point(point(1, price=101.0))
        assert up[0].side is Side.BUY
        down = taker.on_point(point(2, price=99.0))
        assert down[0].side is Side.SELL

    def test_strategy_validation(self):
        with pytest.raises(ValueError):
            SpeedRacer(quantity=0)
        with pytest.raises(ValueError):
            MarketMaker(half_spread=0.0)
        with pytest.raises(ValueError):
            MomentumTaker(quantity=0)


class TestMarketParticipant:
    def make_mp(self, engine, rt=None, strategy=None):
        submitted = []
        mp = MarketParticipant(
            engine,
            mp_id="mp0",
            mp_index=0,
            response_time_model=rt or FixedResponseTime(5.0),
            strategy=strategy or SpeedRacer(seed=1),
            submitter=submitted.append,
        )
        return mp, submitted

    def test_submits_after_response_time(self):
        engine = EventEngine()
        mp, submitted = self.make_mp(engine)
        engine.schedule_at(10.0, lambda: mp.on_data((point(0),), 10.0))
        engine.run()
        assert len(submitted) == 1
        assert submitted[0].submission_time == 15.0
        assert submitted[0].trigger_point == 0
        assert submitted[0].response_time == 5.0

    def test_ground_truth_recorded(self):
        engine = EventEngine()
        mp, _ = self.make_mp(engine)
        engine.schedule_at(10.0, lambda: mp.on_data((point(0), point(1)), 10.0))
        engine.run()
        assert mp.trades_submitted == 2
        assert [o.trade_seq for o in mp.submitted] == [0, 1]

    def test_non_opportunity_points_ignored(self):
        engine = EventEngine()
        mp, submitted = self.make_mp(engine)
        engine.schedule_at(10.0, lambda: mp.on_data((point(0, opportunity=False),), 10.0))
        engine.run()
        assert submitted == []
        assert mp.points_seen == 1

    def test_requires_submitter(self):
        engine = EventEngine()
        mp = MarketParticipant(engine, "mp0", 0)
        with pytest.raises(RuntimeError):
            mp.on_data((point(0),), 0.0)

    def test_multiple_intents_share_response_time(self):
        engine = EventEngine()
        mp, submitted = self.make_mp(engine, strategy=MarketMaker())
        engine.schedule_at(10.0, lambda: mp.on_data((point(0),), 10.0))
        engine.run()
        assert len(submitted) == 2
        assert submitted[0].submission_time == submitted[1].submission_time
        assert submitted[0].trade_seq != submitted[1].trade_seq


class TestAggressiveTaker:
    def test_crosses_with_ioc(self):
        from repro.exchange.messages import TimeInForce
        from repro.participants.strategies import AggressiveTaker

        taker = AggressiveTaker(quantity=3, aggression=1.0)
        intents = taker.on_point(point(0, price=100.0))
        assert len(intents) == 1
        assert intents[0].side is Side.BUY
        assert intents[0].price == 101.0
        assert intents[0].quantity == 3
        assert intents[0].time_in_force is TimeInForce.IOC

    def test_ignores_non_opportunities(self):
        from repro.participants.strategies import AggressiveTaker

        assert AggressiveTaker().on_point(point(0, opportunity=False)) == []

    def test_validation(self):
        from repro.participants.strategies import AggressiveTaker

        with pytest.raises(ValueError):
            AggressiveTaker(quantity=0)

    def test_intent_fields_flow_into_orders(self):
        from repro.exchange.messages import TimeInForce
        from repro.participants.mp import MarketParticipant
        from repro.participants.response_time import FixedResponseTime
        from repro.participants.strategies import AggressiveTaker
        from repro.sim.engine import EventEngine

        engine = EventEngine()
        submitted = []
        mp = MarketParticipant(
            engine,
            "mp0",
            0,
            response_time_model=FixedResponseTime(5.0),
            strategy=AggressiveTaker(quantity=2),
            submitter=submitted.append,
        )
        engine.schedule_at(10.0, lambda: mp.on_data((point(0),), 10.0))
        engine.run()
        assert submitted[0].time_in_force is TimeInForce.IOC
