"""Tests for run-result JSON persistence."""

import pytest

from repro.baselines.base import default_network_specs
from repro.core.system import DBODeployment
from repro.metrics.fairness import evaluate_fairness
from repro.metrics.latency import latency_stats, max_rtt_bound_per_trade
from repro.metrics.serialization import (
    load_run_result,
    run_result_from_dict,
    run_result_to_dict,
    save_run_result,
)


@pytest.fixture(scope="module")
def result():
    deployment = DBODeployment(default_network_specs(3, seed=5), seed=1)
    return deployment.run(duration=3000.0)


class TestRoundtrip:
    def test_dict_roundtrip_preserves_trades(self, result):
        restored = run_result_from_dict(run_result_to_dict(result))
        assert len(restored.trades) == len(result.trades)
        assert restored.trades[0].key == result.trades[0].key
        assert restored.trades[0].forward_time == result.trades[0].forward_time

    def test_metrics_identical_after_roundtrip(self, result):
        restored = run_result_from_dict(run_result_to_dict(result))
        assert evaluate_fairness(restored).ratio == evaluate_fairness(result).ratio
        assert latency_stats(restored).avg == pytest.approx(latency_stats(result).avg)

    def test_point_id_keys_restored_as_ints(self, result):
        restored = run_result_from_dict(run_result_to_dict(result))
        assert all(isinstance(k, int) for k in restored.generation_times)
        assert all(
            isinstance(k, int)
            for points in restored.raw_arrivals.values()
            for k in points
        )

    def test_bounds_materialized(self, result):
        data = run_result_to_dict(result)
        assert data["max_rtt_bounds"] is not None
        assert data["max_rtt_bounds"] == max_rtt_bound_per_trade(result)

    def test_file_roundtrip(self, result, tmp_path):
        path = str(tmp_path / "run.json")
        save_run_result(result, path)
        restored, bounds = load_run_result(path)
        assert restored.scheme == "dbo"
        assert bounds == pytest.approx(max_rtt_bound_per_trade(result))
        # The accessor is gone, but the materialized bounds replace it.
        assert restored.reverse_latency_at is None

    def test_version_checked(self, result):
        data = run_result_to_dict(result)
        data["format_version"] = 99
        with pytest.raises(ValueError):
            run_result_from_dict(data)

    def test_counters_preserved(self, result):
        restored = run_result_from_dict(run_result_to_dict(result))
        assert restored.counters == result.counters
