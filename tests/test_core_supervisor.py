"""Unit tests for the Supervisor escalation ladder (suspect → probe → confirm)."""

import pytest

from repro.core.params import SupervisionPolicy
from repro.core.supervisor import Supervisor
from repro.faults.detector import FailureDetector
from repro.sim.engine import EventEngine


def build(recover=None, **policy_kwargs):
    policy_kwargs.setdefault("check_interval", 10.0)
    policy_kwargs.setdefault("suspect_after", 3.0)
    policy_kwargs.setdefault("confirm_after", 2)
    policy = SupervisionPolicy(**policy_kwargs)
    engine = EventEngine()
    detector = FailureDetector(engine, policy)
    recovered = []

    def default_recover(name, now):
        recovered.append((name, now))
        return True

    supervisor = Supervisor(engine, detector, policy,
                            recover if recover is not None else default_recover)
    return engine, detector, supervisor, recovered


def pulse_until(engine, detector, name, stop, step=10.0):
    t = step
    while t <= stop:
        engine.schedule_at(t, detector.pulse, priority=5, args=(name, t))
        t += step


class TestConfirmAndRecover:
    def test_silent_endpoint_is_probed_confirmed_recovered(self):
        engine, detector, supervisor, recovered = build()
        detector.register("ob")
        pulse_until(engine, detector, "ob", 100.0)
        detector.start(0.0, 400.0)
        supervisor.start(400.0)
        engine.run()
        kinds = [entry.event for entry in supervisor.log]
        assert kinds == ["suspect", "probe", "probe", "confirm", "recover"]
        assert supervisor.confirms == 1
        assert supervisor.recoveries == 1
        assert supervisor.false_alarms == 0
        assert len(recovered) == 1
        assert recovered[0][0] == "ob"
        state = supervisor.escalation_state()["ob"]
        assert state["state"] == "recovered"
        assert state["confirmed_at"] == state["recovered_at"]
        assert supervisor.stalled_endpoints() == []

    def test_probe_ladder_backs_off_deterministically(self):
        engine, detector, supervisor, _ = build(confirm_after=3, probe_backoff=2.0)
        detector.register("ob")
        pulse_until(engine, detector, "ob", 100.0)
        detector.start(0.0, 800.0)
        supervisor.start(800.0)
        engine.run()
        probes = [entry.time for entry in supervisor.log if entry.event == "probe"]
        assert len(probes) == 3
        # Probe k fires check_interval * 2**k after the previous rung.
        assert probes[1] - probes[0] == pytest.approx(20.0)
        assert probes[2] - probes[1] == pytest.approx(40.0)


class TestFalseAlarm:
    def test_pulse_during_probing_clears_without_recovery(self):
        engine, detector, supervisor, recovered = build(confirm_after=5)
        detector.register("ob")
        pulse_until(engine, detector, "ob", 100.0)
        # The endpoint comes back on its own mid-escalation (silence
        # 100 → 200, steady again until the 420 horizon).
        t = 200.0
        while t <= 400.0:
            engine.schedule_at(t, detector.pulse, priority=5, args=("ob", t))
            t += 10.0
        detector.start(0.0, 420.0)
        supervisor.start(420.0)
        engine.run()
        assert supervisor.confirms == 0
        assert recovered == []
        assert all(
            state["state"] == "ok" for state in supervisor.escalation_state().values()
        )
        assert supervisor.false_alarms >= 1

    def test_false_alarm_counted_once_per_episode(self):
        engine, detector, supervisor, _ = build()
        detector.register("rb:mp0")
        # Short silence from t=100 to t=150 — cleared before the probe
        # ladder (confirm_after=2, rungs at +10 and +30) can confirm.
        pulse_until(engine, detector, "rb:mp0", 100.0)
        t = 150.0
        while t <= 400.0:
            engine.schedule_at(t, detector.pulse, priority=5, args=("rb:mp0", t))
            t += 10.0
        detector.start(0.0, 350.0)
        supervisor.start(350.0)
        engine.run()
        # Either the detector's own alive or a probe-time pulse check
        # cleared it — never a confirm.
        assert supervisor.confirms == 0
        assert supervisor.false_alarms >= 1
        assert supervisor.escalation_state()["rb:mp0"]["state"] == "ok"


class TestUnrecoverable:
    def test_failed_recovery_marks_unrecoverable(self):
        engine, detector, supervisor, _ = build(recover=lambda name, now: False)
        detector.register("feed")
        pulse_until(engine, detector, "feed", 100.0)
        detector.start(0.0, 400.0)
        supervisor.start(400.0)
        engine.run()
        assert supervisor.unrecoverable == 1
        assert supervisor.escalation_state()["feed"]["state"] == "unrecoverable"
        # Unrecoverable endpoints are terminal, not "stalled": nothing
        # the supervisor can still do about them.
        assert supervisor.stalled_endpoints() == []

    def test_external_heal_returns_unrecoverable_to_ok(self):
        engine, detector, supervisor, _ = build(recover=lambda name, now: False)
        detector.register("feed")
        pulse_until(engine, detector, "feed", 100.0)

        # A scripted resume restores the feed well after confirmation.
        def resume_pulses():
            t = 500.0
            while t <= 600.0:
                engine.schedule_at(t, detector.pulse, priority=5, args=("feed", t))
                t += 10.0

        engine.schedule_at(499.0, resume_pulses, priority=5)
        detector.start(0.0, 610.0)
        supervisor.start(610.0)
        engine.run()
        assert supervisor.unrecoverable == 1
        assert supervisor.escalation_state()["feed"]["state"] == "ok"


class TestScoping:
    def test_escalations_past_horizon_ignored(self):
        engine, detector, supervisor, recovered = build()
        detector.register("ob")
        pulse_until(engine, detector, "ob", 100.0)
        detector.start(0.0, 400.0)
        # Supervisor stops listening at t=110: the silence after the
        # feed horizon must not trigger recovery actions.
        supervisor.start(110.0)
        engine.run()
        assert supervisor.confirms == 0
        assert recovered == []

    def test_confirmed_endpoint_ignores_further_suspects(self):
        engine, detector, supervisor, recovered = build()
        detector.register("ob")
        pulse_until(engine, detector, "ob", 100.0)
        detector.start(0.0, 800.0)
        supervisor.start(800.0)
        engine.run()
        assert supervisor.confirms == 1
        assert len(recovered) == 1

    def test_log_is_deterministic(self):
        def run_once():
            engine, detector, supervisor, _ = build()
            detector.register("ob")
            detector.register("rb:mp1")
            pulse_until(engine, detector, "ob", 100.0)
            pulse_until(engine, detector, "rb:mp1", 380.0)
            detector.start(0.0, 400.0)
            supervisor.start(400.0)
            engine.run()
            return [entry.to_dict() for entry in supervisor.log]

        assert run_once() == run_once()
