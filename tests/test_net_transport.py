"""Tests for the message plane: Channel/Transport semantics, duplicate
delivery, channel-addressed faults, and the at-least-once safety claims.

The headline pins:

* default lossless transport is behaviorally identical to the historical
  callback wiring (trade-ordering digests match with acks on and off);
* losing acks drives real retransmission (original stamps, OB key-dedup,
  zero trades lost, byte-identical ordering);
* duplicate delivery on any channel leaves the ordering untouched while
  the per-channel odometers record what happened.
"""

import pytest

from repro.baselines.base import NetworkSpec
from repro.baselines.direct import DirectDeployment
from repro.core.params import DBOParams
from repro.core.release_buffer import RetransmitPolicy
from repro.core.system import DBODeployment
from repro.experiments.chaos import CHAOS_PLANS, make_plan, run_chaos
from repro.experiments.scenarios import cloud_specs
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultSchedule, FaultSpec
from repro.metrics.serialization import summary_to_dict, trade_ordering_digest
from repro.net.latency import ConstantLatency
from repro.net.link import Link, LossyLink
from repro.net.transport import Channel, Transport
from repro.sim.engine import EventEngine


def make_channel(dedup_key=None, latency=10.0, lossy=False, **link_kwargs):
    engine = EventEngine()
    if lossy:
        link = LossyLink(engine, ConstantLatency(latency), **link_kwargs)
    else:
        link = Link(engine, ConstantLatency(latency), **link_kwargs)
    channel = Channel("test", link, source="a", destination="b",
                      dedup_key=dedup_key)
    got = []
    channel.connect(lambda m, s, a: got.append((m, s, a)))
    return engine, channel, got


class TestTransportRegistry:
    def test_names_are_unique(self):
        engine = EventEngine()
        transport = Transport()
        transport.open_channel("x", Link(engine, ConstantLatency(1.0)))
        with pytest.raises(ValueError, match="duplicate channel name"):
            transport.open_channel("x", Link(engine, ConstantLatency(1.0)))

    def test_unknown_name_lists_available(self):
        engine = EventEngine()
        transport = Transport()
        transport.open_channel("b", Link(engine, ConstantLatency(1.0)))
        transport.open_channel("a", Link(engine, ConstantLatency(1.0)))
        with pytest.raises(KeyError, match=r"'a', 'b'"):
            transport.channel("zz")

    def test_iteration_and_counters_sorted_by_name(self):
        engine = EventEngine()
        transport = Transport()
        for name in ("rev-mp1", "ack-mp0", "fwd-mp0"):
            transport.open_channel(name, Link(engine, ConstantLatency(1.0)))
        assert transport.names() == ["ack-mp0", "fwd-mp0", "rev-mp1"]
        assert [c.name for c in transport] == transport.names()
        assert list(transport.counters()) == transport.names()
        assert "ack-mp0" in transport
        assert "nope" not in transport
        assert len(transport) == 3


class TestChannelDelivery:
    def test_counts_sent_and_delivered(self):
        engine, channel, got = make_channel()
        channel.send("a", send_time=0.0)
        channel.send("b", send_time=1.0)
        engine.run()
        assert [m for m, _, _ in got] == ["a", "b"]
        assert channel.messages_sent == 2
        assert channel.messages_delivered == 2
        assert channel.counters() == {
            "sent": 2.0, "delivered": 2.0, "dropped": 0.0,
            "duplicated": 0.0, "deduped": 0.0,
        }

    def test_dedup_hook_absorbs_repeats(self):
        engine, channel, got = make_channel(dedup_key=lambda m: m)
        channel.send("a", send_time=0.0)
        channel.send("a", send_time=1.0)
        channel.send("b", send_time=2.0)
        engine.run()
        assert [m for m, _, _ in got] == ["a", "b"]
        assert channel.messages_deduped == 1
        assert channel.messages_delivered == 2

    def test_blackhole_and_burst_count_as_dropped(self):
        engine, channel, got = make_channel()
        channel.set_blackhole(True)
        channel.send("gone", send_time=0.0)
        channel.set_blackhole(False)
        channel.start_loss_burst(1.0, seed=0)
        channel.send("also gone", send_time=1.0)
        channel.stop_loss_burst()
        channel.send("kept", send_time=2.0)
        engine.run()
        assert [m for m, _, _ in got] == ["kept"]
        assert channel.messages_dropped == 2

    def test_degrade_and_clear(self):
        engine, channel, got = make_channel(latency=10.0)
        channel.degrade(extra=90.0)
        channel.send("slow", send_time=0.0)
        channel.clear_degradation()
        channel.send("fast", send_time=200.0)
        engine.run()
        assert got[0][2] == 100.0
        assert got[1][2] == 210.0

    def test_loss_handler_noop_on_plain_link(self):
        _, channel, _ = make_channel()
        channel.set_loss_handler(lambda m, s, a: None)  # must not raise

    def test_loss_handler_installed_on_lossy_link(self):
        engine, channel, got = make_channel(lossy=True, loss_probability=0.99,
                                            recovery_delay=50.0)
        recovered = []
        channel.set_loss_handler(lambda m, s, a: recovered.append(m))
        for i in range(20):
            channel.send(i, send_time=float(i))
        engine.run()
        assert recovered  # some packets went the out-of-band way
        assert len(got) + len(recovered) == 20
        assert channel.counters()["lost"] == float(len(recovered))


class TestDuplicateDelivery:
    def test_duplicates_share_the_arrival_time(self):
        engine, channel, got = make_channel()
        channel.start_duplication(1.0, seed=3)
        channel.send("m", send_time=0.0)
        engine.run()
        assert [m for m, _, _ in got] == ["m", "m"]
        assert got[0][2] == got[1][2]
        assert channel.messages_duplicated == 1

    def test_duplication_is_seed_deterministic(self):
        def run():
            engine, channel, got = make_channel()
            channel.start_duplication(0.5, seed=9)
            for i in range(50):
                channel.send(i, send_time=float(i))
            engine.run()
            return [m for m, _, _ in got], channel.messages_duplicated

        first, first_dups = run()
        second, second_dups = run()
        assert first == second
        assert first_dups == second_dups
        assert 0 < first_dups < 50

    def test_stop_duplication(self):
        engine, channel, got = make_channel()
        channel.start_duplication(1.0)
        channel.send("a", send_time=0.0)
        channel.stop_duplication()
        channel.send("b", send_time=1.0)
        engine.run()
        assert [m for m, _, _ in got] == ["a", "a", "b"]

    def test_probability_bounds(self):
        _, channel, _ = make_channel()
        for probability in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError, match="probability"):
                channel.start_duplication(probability)

    def test_dedup_hook_makes_duplication_invisible(self):
        engine, channel, got = make_channel(dedup_key=lambda m: m)
        channel.start_duplication(1.0, seed=1)
        for i in range(10):
            channel.send(i, send_time=float(i))
        engine.run()
        assert [m for m, _, _ in got] == list(range(10))
        assert channel.messages_duplicated == 10
        assert channel.messages_deduped == 10


# ----------------------------------------------------------------------
# Integration: the deployments ride the message plane
# ----------------------------------------------------------------------
def quiet_specs(n=4):
    return [
        NetworkSpec(forward=ConstantLatency(10.0 + i), reverse=ConstantLatency(10.0 + i))
        for i in range(n)
    ]


DURATION = 20_000.0


class TestLosslessEquivalence:
    """Default lossless transport must match the legacy callback wiring."""

    def digest(self, policy):
        deployment = DBODeployment(
            quiet_specs(), params=DBOParams(delta=20.0), seed=7,
            retransmit_policy=policy,
        )
        return trade_ordering_digest(deployment.run(duration=DURATION))

    def test_acks_do_not_perturb_the_ordering(self):
        assert self.digest(None) == self.digest(RetransmitPolicy())

    def test_channel_registry_covers_every_path(self):
        policy = RetransmitPolicy()
        deployment = DBODeployment(
            quiet_specs(2), params=DBOParams(delta=20.0), seed=7,
            retransmit_policy=policy, enable_egress_gateway=True,
        )
        result = deployment.run(duration=5_000.0)
        assert deployment.transport.names() == [
            "ack-mp0", "ack-mp1", "egress", "fwd-mp0", "fwd-mp1",
            "ob-adopt", "rev-mp0", "rev-mp1",
        ]
        # Every channel that carried traffic shows up in the run result.
        assert result.channels == deployment.transport.counters()
        assert result.channels["fwd-mp0"]["sent"] > 0
        assert result.channels["rev-mp0"]["sent"] > 0
        assert result.channels["ack-mp0"]["sent"] > 0


class TestAckLoss:
    """Losing acks drives retransmission; nothing is lost, nothing moves."""

    def run_with(self, plan):
        policy = RetransmitPolicy(timeout=500.0, backoff=2.0, max_retries=8)
        deployment = DBODeployment(
            quiet_specs(), params=DBOParams(delta=20.0), seed=5,
            retransmit_policy=policy,
        )
        if plan is not None:
            injector = FaultInjector(plan)
            injector.arm(deployment)
        return deployment.run(duration=DURATION)

    def test_ack_burst_loss_retransmits_and_loses_nothing(self):
        plan = FaultSchedule.of(
            *[
                FaultSpec(kind="link_burst_loss", at=4_000.0, duration=7_000.0,
                          channel=f"ack-mp{i}", magnitude=0.9, seed=11 + i)
                for i in range(4)
            ],
            name="ack-loss",
        )
        clean = self.run_with(None)
        faulted = self.run_with(plan)
        assert faulted.counters["trades_retransmitted"] > 0
        assert faulted.counters["acks_received"] < clean.counters["acks_received"]
        assert faulted.counters.get("retransmits_abandoned", 0.0) == 0.0
        assert faulted.completion_ratio() == 1.0
        # Resends carry the original stamps and the OB dedups on keys, so
        # the matching-engine ordering is byte-identical.
        assert trade_ordering_digest(faulted) == trade_ordering_digest(clean)
        dropped = sum(
            faulted.channels[f"ack-mp{i}"]["dropped"] for i in range(4)
        )
        assert dropped > 0

    def test_named_plan_via_run_chaos(self):
        plan = make_plan("ack-loss", DURATION, 4)
        report = run_chaos(
            "dbo", lambda: cloud_specs(4, seed=3), duration=DURATION,
            plan=plan, seed=3,
        )
        assert report.safe
        assert report.faulted.counters["trades_retransmitted"] > 0
        assert report.faulted.completion_ratio() == 1.0
        assert report.degradation.completion_drop == 0.0


class TestDuplicateDeliveryIntegration:
    def run_dbo(self, plan):
        deployment = DBODeployment(
            quiet_specs(), params=DBOParams(delta=20.0), seed=9,
        )
        if plan is not None:
            injector = FaultInjector(plan)
            injector.arm(deployment)
        return deployment.run(duration=DURATION)

    def test_reverse_duplicates_are_absorbed_by_ob_dedup(self):
        plan = FaultSchedule.of(
            FaultSpec(kind="duplicate_delivery", at=2_000.0, duration=14_000.0,
                      channel="rev-mp0", magnitude=1.0, seed=5),
            name="dup",
        )
        clean = self.run_dbo(None)
        faulted = self.run_dbo(plan)
        assert faulted.channels["rev-mp0"]["duplicated"] > 0
        assert faulted.counters["ob_retransmits_ignored"] > 0
        assert trade_ordering_digest(faulted) == trade_ordering_digest(clean)

    def test_forward_duplicates_are_deduped_at_the_channel(self):
        plan = FaultSchedule.of(
            FaultSpec(kind="duplicate_delivery", at=2_000.0, duration=14_000.0,
                      channel="fwd-mp1", magnitude=1.0, seed=6),
            name="dup",
        )
        clean = self.run_dbo(None)
        faulted = self.run_dbo(plan)
        channel = faulted.channels["fwd-mp1"]
        assert channel["duplicated"] > 0
        assert channel["deduped"] == channel["duplicated"]
        assert trade_ordering_digest(faulted) == trade_ordering_digest(clean)

    def test_direct_reverse_duplicates_never_reach_the_matching_engine(self):
        def run(with_fault):
            deployment = DirectDeployment(quiet_specs(), seed=2)
            if with_fault:
                plan = FaultSchedule.of(
                    FaultSpec(kind="duplicate_delivery", at=1_000.0,
                              duration=10_000.0, channel="rev-mp0",
                              magnitude=1.0, seed=4),
                    name="dup",
                )
                FaultInjector(plan).arm(deployment)
            return deployment.run(duration=DURATION)

        clean = run(False)
        faulted = run(True)
        assert faulted.channels["rev-mp0"]["deduped"] > 0
        assert trade_ordering_digest(faulted) == trade_ordering_digest(clean)

    def test_named_dup_plan_registered(self):
        assert "dup-delivery" in CHAOS_PLANS
        plan = make_plan("dup-delivery", 10_000.0, 4)
        assert {f.kind for f in plan} == {"duplicate_delivery"}
        assert all(f.channel is not None for f in plan)


class TestChannelCountersInSummaries:
    def test_summary_to_dict_carries_channels(self):
        from repro.experiments.runner import run_scheme, summarize

        result = run_scheme("dbo", quiet_specs(2), duration=5_000.0, seed=1)
        summary = summarize(result, with_bound=False)
        doc = summary_to_dict(summary)
        assert set(doc["channels"]) == set(result.channels)
        assert doc["channels"]["fwd-mp0"]["sent"] > 0
