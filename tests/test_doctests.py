"""Run the doctest examples embedded in module/class docstrings.

Documentation that executes is documentation that stays true: every
``>>>`` example shipped in the public API is verified here.
"""

import doctest
import importlib
import sys

import pytest

MODULE_NAMES = [
    "repro.sim.engine",
    "repro.net.multicast",
    "repro.exchange.order_book",
    "repro.exchange.accounting",
    "repro.core.delivery_clock",
    "repro.core.system",
    # NB: fetched via sys.modules — the package re-exports a same-named
    # *function* that shadows the submodule as an attribute.
    "repro.analysis.sweep",
]


@pytest.mark.parametrize("name", MODULE_NAMES)
def test_module_doctests(name):
    importlib.import_module(name)
    module = sys.modules[name]
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its doctest examples"
    assert results.failed == 0
