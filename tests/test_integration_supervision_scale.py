"""Supervised recovery at scale: N=1024 under a fanout-8 aggregation tree.

One deployment, four aggregator crashes in two waves:

* wave 1 — three level-1 interior nodes (``agg1-0``, ``agg1-2``,
  ``agg1-5``) fail-stop at the same instant, so the failure detector
  carries **three concurrent suspects** through confirm and recovery;
* wave 2 — ``agg1-1`` fails *after* it adopted ``agg1-0``'s subtree
  (``recover_aggregator`` reassigns a dead node's coverage into its
  first surviving sibling), so the same shards are re-parented twice —
  a **cascaded adoption**.

The pins: the supervisor recovers all four without manual help, zero
trades are lost (full completion despite the double-moved subtree), the
safety audit stays clean, and the detection-to-recovery latency
distribution is tight and fully populated.

The run is expensive (1024 RBs heartbeating every τ), so everything is
asserted off one session-scoped faulted run — no clean twin here; the
fault-free invisibility half is pinned at small N by
``test_integration_supervision.py``.
"""

from __future__ import annotations

import pytest

from repro.baselines.base import default_network_specs
from repro.core.params import AggregationTopology
from repro.core.release_buffer import RetransmitPolicy
from repro.experiments.runner import build_deployment
from repro.faults.auditor import InvariantAuditor
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultSchedule, FaultSpec

N = 1024
FANOUT = 8
DURATION = 1_200.0
DRAIN = 600.0
SEED = 13

WAVE_1 = ("agg1-0", "agg1-2", "agg1-5")
# agg1-1 is agg1-0's deterministic adopter (first surviving sibling in
# the parent's child order), so crashing it afterwards cascades.
WAVE_2 = ("agg1-1",)


@pytest.fixture(scope="module")
def scale_run():
    plan = FaultSchedule.of(
        *[
            FaultSpec(kind="aggregator_failure", at=0.25 * DURATION, target=node)
            for node in WAVE_1
        ],
        FaultSpec(kind="aggregator_failure", at=0.5 * DURATION, target=WAVE_2[0]),
        name="agg-crash-cascade-1024",
    )
    deployment = build_deployment(
        "dbo",
        default_network_specs(N, seed=SEED),
        seed=SEED,
        engine="calendar",
        supervise=True,
        topology=AggregationTopology(depth=2, fanout=FANOUT),
        n_ob_shards=FANOUT * FANOUT,
        retransmit_policy=RetransmitPolicy(),
    )
    injector = FaultInjector(plan, recovery="detected")
    injector.arm(deployment)
    auditor = InvariantAuditor(stall_timeout=50_000.0)
    auditor.attach(deployment)
    result = deployment.run(duration=DURATION, drain=DRAIN)
    report = auditor.report()
    supervisor = report.to_dict()["recovery"].get("supervisor", {})
    return deployment, result, report, supervisor


def _agg_escalations(supervisor):
    return {
        name: snap for name, snap in supervisor.items() if name.startswith("agg:")
    }


def test_all_crashed_aggregators_recovered(scale_run):
    _, _, _, supervisor = scale_run
    escalations = _agg_escalations(supervisor)
    assert sorted(escalations) == sorted(
        f"agg:{node}" for node in WAVE_1 + WAVE_2
    )
    assert all(snap["state"] == "recovered" for snap in escalations.values())


def test_at_least_three_concurrent_suspects(scale_run):
    """Wave 1's escalations overlap: ≥3 endpoints suspect at one instant."""
    _, _, _, supervisor = scale_run
    windows = [
        (snap["suspected_at"], snap["recovered_at"])
        for name, snap in _agg_escalations(supervisor).items()
        if name.removeprefix("agg:") in WAVE_1
    ]
    assert len(windows) == 3
    overlap_start = max(start for start, _ in windows)
    overlap_end = min(end for _, end in windows)
    assert overlap_start < overlap_end, "wave-1 suspects did not overlap"


def test_cascaded_adoption_re_parents_twice(scale_run):
    """agg1-1 adopted agg1-0's subtree, then died and was re-adopted."""
    _, _, _, supervisor = scale_run
    wave1 = _agg_escalations(supervisor)[f"agg:{WAVE_1[0]}"]
    wave2 = _agg_escalations(supervisor)[f"agg:{WAVE_2[0]}"]
    # Strict ordering: the adopter's own failure (and recovery) happened
    # only after it had recovered wave 1's subtree.
    assert wave1["recovered_at"] < wave2["suspected_at"]
    assert wave2["state"] == "recovered"


def test_zero_trades_lost(scale_run):
    _, result, report, _ = scale_run
    assert report.ok, report.counts()
    assert result.completion_ratio() == 1.0


def test_detection_to_recovery_latency_distribution(scale_run):
    """Every escalation carries a full timeline; latencies are tight.

    Detection-to-recovery = recovered_at − suspected_at.  The probe
    ladder (2 failed probes, then confirm + recover in one step) bounds
    it well under the run length; the distribution must be fully
    populated (no None anywhere) and positive.
    """
    _, _, _, supervisor = scale_run
    latencies = sorted(
        snap["recovered_at"] - snap["suspected_at"]
        for snap in _agg_escalations(supervisor).values()
    )
    assert len(latencies) == len(WAVE_1) + len(WAVE_2)
    assert all(0.0 < lat < DURATION / 2 for lat in latencies)
    p50 = latencies[len(latencies) // 2]
    assert p50 <= latencies[-1] < 5.0 * latencies[0]


def test_supervisor_counters_match_escalations(scale_run):
    deployment, _, _, supervisor = scale_run
    counters = deployment.supervisor.counters()
    assert counters["supervisor_confirms"] == 4.0
    assert counters["supervisor_recoveries"] == 4.0
    assert counters["supervisor_unrecoverable"] == 0.0
