"""Unit tests for trace generation, persistence, and the §6.4 recipe."""

import pytest

from repro.net.trace import (
    NetworkTrace,
    generate_figure11_trace,
    load_trace_csv,
    one_way_models_from_trace,
    save_trace_csv,
)


class TestNetworkTrace:
    def test_duration(self):
        trace = NetworkTrace([0.0, 10.0, 20.0], [1.0, 2.0, 3.0])
        assert trace.duration == 20.0

    def test_stats(self):
        trace = NetworkTrace([0.0, 1.0, 2.0, 3.0], [10.0, 20.0, 30.0, 40.0])
        assert trace.min_value() == 10.0
        assert trace.max_value() == 40.0
        assert trace.mean_value() == 25.0
        assert trace.percentile(0.0) == 10.0
        assert trace.percentile(100.0) == 40.0

    def test_percentile_validation(self):
        trace = NetworkTrace([0.0, 1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            trace.percentile(101.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            NetworkTrace([0.0, 1.0], [1.0])

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            NetworkTrace([0.0], [1.0])

    def test_to_model(self):
        trace = NetworkTrace([0.0, 10.0], [100.0, 200.0])
        model = trace.to_model(scale=0.5)
        assert model.latency_at(0.0) == pytest.approx(50.0)


class TestFigure11Generator:
    def test_default_shape(self):
        trace = generate_figure11_trace()
        assert trace.duration == pytest.approx(2_000_000.0)
        # Base band around 55 µs RTT.
        assert 54.0 <= trace.min_value() <= 60.0
        # Spikes reach several hundred µs.
        assert trace.max_value() > 150.0

    def test_deterministic(self):
        a = generate_figure11_trace(seed=5)
        b = generate_figure11_trace(seed=5)
        assert a.values == b.values

    def test_seed_changes_trace(self):
        a = generate_figure11_trace(seed=5)
        b = generate_figure11_trace(seed=6)
        assert a.values != b.values

    def test_no_spikes(self):
        trace = generate_figure11_trace(spike_count=0, base_rtt=50.0, jitter=2.0)
        assert trace.max_value() <= 52.0

    def test_spike_count_scales_peaks(self):
        quiet = generate_figure11_trace(spike_count=1, duration=100_000.0)
        busy = generate_figure11_trace(spike_count=10, duration=100_000.0)
        above = lambda t: sum(1 for v in t.values if v > 100.0)
        assert above(busy) > above(quiet)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_figure11_trace(duration=0.0)
        with pytest.raises(ValueError):
            generate_figure11_trace(spike_count=-1)


class TestOneWayModels:
    def test_returns_pairs_per_participant(self):
        trace = generate_figure11_trace(duration=100_000.0)
        models = one_way_models_from_trace(trace, 5, seed=1)
        assert len(models) == 5

    def test_values_are_halved(self):
        trace = NetworkTrace([0.0, 100.0], [50.0, 50.0])
        models = one_way_models_from_trace(trace, 3, seed=1)
        for forward, reverse in models:
            assert forward.latency_at(10.0) == pytest.approx(25.0)
            assert reverse.latency_at(10.0) == pytest.approx(25.0)

    def test_slices_differ_across_participants(self):
        trace = generate_figure11_trace(duration=200_000.0)
        models = one_way_models_from_trace(trace, 4, seed=2)
        values = {round(fwd.latency_at(0.0), 9) for fwd, _ in models}
        assert len(values) > 1

    def test_deterministic(self):
        trace = generate_figure11_trace(duration=100_000.0)
        a = one_way_models_from_trace(trace, 3, seed=9)
        b = one_way_models_from_trace(trace, 3, seed=9)
        for (fa, ra), (fb, rb) in zip(a, b):
            assert fa.latency_at(123.0) == fb.latency_at(123.0)
            assert ra.latency_at(123.0) == rb.latency_at(123.0)

    def test_validation(self):
        trace = generate_figure11_trace(duration=100_000.0)
        with pytest.raises(ValueError):
            one_way_models_from_trace(trace, 0)


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        trace = generate_figure11_trace(duration=50_000.0)
        path = str(tmp_path / "trace.csv")
        save_trace_csv(trace, path)
        loaded = load_trace_csv(path)
        assert len(loaded.times) == len(trace.times)
        assert loaded.values[0] == pytest.approx(trace.values[0], abs=1e-3)
        assert loaded.values[-1] == pytest.approx(trace.values[-1], abs=1e-3)

    def test_load_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            load_trace_csv(str(path))

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time_us,rtt_us\n1.0\n")
        with pytest.raises(ValueError):
            load_trace_csv(str(path))
