"""Unit tests for the front-running-prevention egress gateway (App. E)."""

import pytest

from repro.core.delivery_clock import DeliveryClockStamp
from repro.core.gateway import EgressGateway


def make_gateway(participants=("a", "b")):
    released = []
    gateway = EgressGateway(
        participants=list(participants),
        sink=lambda message, now: released.append((message.payload, now)),
    )
    return gateway, released


def stamp(point, elapsed=0.0):
    return DeliveryClockStamp(point, elapsed)


class TestHold:
    def test_held_until_all_participants_have_point(self):
        gateway, released = make_gateway()
        gateway.on_clock_report("a", stamp(5), now=10.0)
        gateway.on_egress("a", "data-about-5", stamp(5), now=11.0)
        assert released == []  # b hasn't seen point 5
        gateway.on_clock_report("b", stamp(4), now=12.0)
        assert released == []
        gateway.on_clock_report("b", stamp(5), now=13.0)
        assert released == [("data-about-5", 13.0)]

    def test_releases_immediately_when_already_safe(self):
        gateway, released = make_gateway()
        gateway.on_clock_report("a", stamp(9), now=10.0)
        gateway.on_clock_report("b", stamp(9), now=10.0)
        gateway.on_egress("a", "old-news", stamp(3), now=11.0)
        assert released == [("old-news", 11.0)]

    def test_nothing_released_before_everyone_reports(self):
        gateway, released = make_gateway()
        gateway.on_clock_report("a", stamp(5), now=10.0)
        gateway.on_egress("a", "x", stamp(0), now=11.0)
        assert released == []  # b never reported at all

    def test_release_order_by_tag(self):
        gateway, released = make_gateway()
        gateway.on_egress("a", "second", stamp(6), now=1.0)
        gateway.on_egress("b", "first", stamp(2), now=2.0)
        gateway.on_clock_report("a", stamp(10), now=3.0)
        gateway.on_clock_report("b", stamp(10), now=4.0)
        assert [p for p, _ in released] == ["first", "second"]

    def test_partial_drain(self):
        gateway, released = make_gateway()
        gateway.on_egress("a", "early", stamp(1), now=1.0)
        gateway.on_egress("a", "late", stamp(8), now=2.0)
        gateway.on_clock_report("a", stamp(8), now=3.0)
        gateway.on_clock_report("b", stamp(4), now=4.0)
        assert [p for p, _ in released] == ["early"]
        assert gateway.pending_count == 1

    def test_counters(self):
        gateway, released = make_gateway()
        gateway.on_egress("a", "x", stamp(0), now=1.0)
        gateway.on_clock_report("a", stamp(1), now=2.0)
        gateway.on_clock_report("b", stamp(1), now=3.0)
        assert gateway.messages_buffered == 1
        assert gateway.messages_released == 1


class TestValidation:
    def test_unknown_participant_report_rejected(self):
        gateway, _ = make_gateway()
        with pytest.raises(KeyError):
            gateway.on_clock_report("zzz", stamp(0), now=0.0)

    def test_needs_participants(self):
        with pytest.raises(ValueError):
            EgressGateway(participants=[])

    def test_reports_only_advance(self):
        gateway, released = make_gateway()
        gateway.on_clock_report("a", stamp(9), now=1.0)
        gateway.on_clock_report("a", stamp(3), now=2.0)  # stale, ignored
        gateway.on_clock_report("b", stamp(9), now=3.0)
        gateway.on_egress("a", "x", stamp(8), now=4.0)
        assert released  # watermark stayed at 9
