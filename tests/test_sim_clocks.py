"""Unit tests for the clock substrate."""

import pytest

from repro.sim.clocks import (
    DriftingClock,
    PerfectClock,
    SynchronizedClock,
    make_clock,
)


class TestPerfectClock:
    def test_reads_true_time(self):
        clock = PerfectClock()
        assert clock.now(123.456) == 123.456

    def test_elapsed_is_exact(self):
        clock = PerfectClock()
        assert clock.elapsed(10.0, 25.0) == 15.0

    def test_interval_to_true_identity(self):
        assert PerfectClock().interval_to_true(20.0) == 20.0


class TestDriftingClock:
    def test_offset_shifts_reading(self):
        clock = DriftingClock(offset=100.0)
        assert clock.now(0.0) == 100.0
        assert clock.now(50.0) == 150.0

    def test_drift_scales_rate(self):
        clock = DriftingClock(drift_rate=0.01)
        assert clock.now(100.0) == pytest.approx(101.0)

    def test_elapsed_ignores_offset(self):
        fast = DriftingClock(offset=1e9, drift_rate=0.0)
        assert fast.elapsed(5.0, 10.0) == pytest.approx(5.0)

    def test_elapsed_scales_with_drift(self):
        clock = DriftingClock(offset=3.0, drift_rate=2e-4)
        assert clock.elapsed(0.0, 1000.0) == pytest.approx(1000.2)

    def test_invert_roundtrips(self):
        clock = DriftingClock(offset=17.0, drift_rate=1e-4)
        for t in [0.0, 1.0, 123.456, 1e6]:
            assert clock.invert(clock.now(t)) == pytest.approx(t)

    def test_interval_to_true_compensates_drift(self):
        clock = DriftingClock(drift_rate=1e-3)
        true = clock.interval_to_true(20.0)
        # A locally measured 20 µs corresponds to slightly less true time
        # on a fast clock.
        assert true < 20.0
        assert clock.elapsed(0.0, true) == pytest.approx(20.0)

    def test_rejects_stopped_clock(self):
        with pytest.raises(ValueError):
            DriftingClock(drift_rate=-1.0)


class TestSynchronizedClock:
    def test_zero_error_is_perfect(self):
        clock = SynchronizedClock(error_bound=0.0)
        for t in [0.0, 10.0, 1e6]:
            assert clock.now(t) == t

    def test_error_is_bounded(self):
        clock = SynchronizedClock(error_bound=5.0, seed=3)
        for t in range(0, 2_000_000, 10_007):
            assert abs(clock.error_at(float(t))) <= 5.0 + 1e-9

    def test_error_varies_over_time(self):
        clock = SynchronizedClock(error_bound=5.0, seed=3, wander_period=1000.0)
        values = {round(clock.error_at(float(t)), 6) for t in range(0, 2000, 100)}
        assert len(values) > 3

    def test_different_seeds_differ(self):
        a = SynchronizedClock(error_bound=5.0, seed=1)
        b = SynchronizedClock(error_bound=5.0, seed=2)
        assert any(
            abs(a.error_at(float(t)) - b.error_at(float(t))) > 1e-9
            for t in range(0, 10_000, 500)
        )

    def test_rejects_negative_bound(self):
        with pytest.raises(ValueError):
            SynchronizedClock(error_bound=-1.0)

    def test_rejects_bad_wander_period(self):
        with pytest.raises(ValueError):
            SynchronizedClock(error_bound=1.0, wander_period=0.0)


class TestMakeClock:
    def test_perfect(self):
        assert isinstance(make_clock("perfect"), PerfectClock)

    def test_drifting(self):
        clock = make_clock("drifting", offset=5.0, drift_rate=1e-4)
        assert isinstance(clock, DriftingClock)
        assert clock.offset == 5.0

    def test_synchronized(self):
        clock = make_clock("synchronized", error_bound=2.0, seed=9)
        assert isinstance(clock, SynchronizedClock)
        assert clock.error_bound == 2.0

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            make_clock("atomic")
