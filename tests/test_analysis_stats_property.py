"""Property-based edge-case coverage for wilson_interval / pooled_fairness.

ISSUE 3 satellite: analysis/stats.py previously had no direct unit
coverage of its degenerate cases.  The properties pinned here:

* intervals are genuine sub-intervals of [0, 1] containing the point
  estimate;
* more trials at the same ratio never widen the interval (monotonicity
  in n);
* degenerate 0/0, 0/n and n/n inputs behave as documented;
* pooling is exactly the Wilson interval of the summed counts.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.stats import pooled_fairness, wilson_interval

counts = st.integers(min_value=0, max_value=10_000)


@st.composite
def successes_trials(draw):
    trials = draw(st.integers(min_value=1, max_value=10_000))
    successes = draw(st.integers(min_value=0, max_value=trials))
    return successes, trials


class TestWilsonProperties:
    @given(successes_trials())
    def test_bounds_and_point_estimate(self, st_pair):
        successes, trials = st_pair
        low, high = wilson_interval(successes, trials)
        p = successes / trials
        assert 0.0 <= low <= p <= high <= 1.0

    @given(successes_trials(), st.integers(min_value=2, max_value=50))
    def test_monotone_narrowing_in_n(self, st_pair, factor):
        # Same ratio, factor× the evidence: the interval must not widen.
        successes, trials = st_pair
        low1, high1 = wilson_interval(successes, trials)
        low2, high2 = wilson_interval(successes * factor, trials * factor)
        assert (high2 - low2) <= (high1 - low1) + 1e-12

    @given(st.integers(min_value=1, max_value=10_000))
    def test_degenerate_zero_successes(self, trials):
        low, high = wilson_interval(0, trials)
        assert low == 0.0
        assert 0.0 < high < 1.0

    @given(st.integers(min_value=1, max_value=10_000))
    def test_degenerate_all_successes(self, trials):
        low, high = wilson_interval(trials, trials)
        assert high == 1.0
        assert 0.0 < low < 1.0

    def test_degenerate_no_trials(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    @given(successes_trials())
    def test_confidence_ordering(self, st_pair):
        successes, trials = st_pair
        widths = []
        for confidence in (0.90, 0.95, 0.99):
            low, high = wilson_interval(successes, trials, confidence)
            widths.append(high - low)
        assert widths[0] <= widths[1] <= widths[2]


class TestPooledFairnessProperties:
    @given(st.lists(successes_trials(), min_size=1, max_size=8))
    def test_bounds(self, pairs):
        pooled = pooled_fairness(pairs)
        low, high = pooled["ci"]
        assert 0.0 <= low <= pooled["ratio"] <= high <= 1.0
        assert pooled["pairs"] == sum(t for _, t in pairs)
        assert pooled["successes"] == sum(s for s, _ in pairs)
        assert len(pooled["per_seed"]) == len(pairs)

    @given(st.lists(successes_trials(), min_size=1, max_size=8))
    def test_pooling_equals_wilson_of_sums(self, pairs):
        pooled = pooled_fairness(pairs)
        total_s = sum(s for s, _ in pairs)
        total_t = sum(t for _, t in pairs)
        assert pooled["ci"] == wilson_interval(total_s, total_t)
        assert pooled["ratio"] == total_s / total_t

    def test_degenerate_all_empty_seeds(self):
        pooled = pooled_fairness([(0, 0), (0, 0)])
        assert pooled["ratio"] == 1.0
        assert pooled["ci"] == (0.0, 1.0)
        assert pooled["per_seed"] == [1.0, 1.0]

    def test_degenerate_empty_list(self):
        pooled = pooled_fairness([])
        assert pooled["ratio"] == 1.0
        assert pooled["ci"] == (0.0, 1.0)

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            pooled_fairness([(5, 3)])
        with pytest.raises(ValueError):
            pooled_fairness([(-1, 3)])

    @given(st.lists(successes_trials(), min_size=1, max_size=6))
    def test_empty_seeds_do_not_move_the_pool(self, pairs):
        with_empty = pooled_fairness(pairs + [(0, 0)])
        without = pooled_fairness(pairs)
        assert with_empty["ci"] == without["ci"]
        assert with_empty["ratio"] == without["ratio"]
