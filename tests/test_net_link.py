"""Unit tests for FIFO links and lossy links."""

import pytest

from repro.net.latency import ConstantLatency, StepLatency
from repro.net.link import Link, LossyLink
from repro.sim.engine import EventEngine


def make_link(engine, model, record=False):
    got = []
    link = Link(engine, model, handler=lambda m, s, a: got.append((m, s, a)), record=record)
    return link, got


class TestLink:
    def test_delivers_with_latency(self):
        engine = EventEngine()
        link, got = make_link(engine, ConstantLatency(5.0))
        link.send("hello")
        engine.run()
        assert got == [("hello", 0.0, 5.0)]

    def test_send_returns_arrival_time(self):
        engine = EventEngine()
        link, _ = make_link(engine, ConstantLatency(5.0))
        assert link.send("x") == 5.0

    def test_explicit_send_time(self):
        engine = EventEngine()
        link, got = make_link(engine, ConstantLatency(5.0))
        engine.schedule_at(10.0, lambda: link.send("x", send_time=10.0))
        engine.run()
        assert got == [("x", 10.0, 15.0)]

    def test_fifo_clamping(self):
        # Latency drops from 100 to 1 at t=10: the later packet would
        # overtake; FIFO clamps it to the earlier arrival.
        engine = EventEngine()
        model = StepLatency([(0.0, 100.0), (10.0, 1.0)])
        link, got = make_link(engine, model)
        link.send("slow", send_time=0.0)          # arrives 100
        engine.schedule_at(10.0, lambda: link.send("fast"))  # raw arrival 11
        engine.run()
        assert [m for m, _, _ in got] == ["slow", "fast"]
        assert got[1][2] == 100.0  # clamped

    def test_arrival_time_for_is_pure(self):
        engine = EventEngine()
        link, got = make_link(engine, ConstantLatency(5.0))
        before = link.arrival_time_for(3.0)
        link.send("x")
        after = link.arrival_time_for(3.0)
        assert before == after == 8.0
        assert link.packets_sent == 1

    def test_requires_handler(self):
        engine = EventEngine()
        link = Link(engine, ConstantLatency(1.0))
        with pytest.raises(RuntimeError):
            link.send("x")

    def test_connect_attaches_handler(self):
        engine = EventEngine()
        link = Link(engine, ConstantLatency(1.0))
        got = []
        link.connect(lambda m, s, a: got.append(m))
        link.send("x")
        engine.run()
        assert got == ["x"]

    def test_records_when_enabled(self):
        engine = EventEngine()
        link, _ = make_link(engine, ConstantLatency(5.0), record=True)
        link.send("x")
        engine.run()
        assert len(link.records) == 1
        record = link.records[0]
        assert record.raw_latency == 5.0
        assert not record.fifo_clamped
        assert not record.lost

    def test_counters(self):
        engine = EventEngine()
        link, _ = make_link(engine, ConstantLatency(5.0))
        link.send("a")
        link.send("b")
        assert link.packets_sent == 2
        assert link.packets_delivered == 0
        engine.run()
        assert link.packets_delivered == 2


class TestLossyLink:
    def make(self, engine, loss, recovery=100.0, seed=0):
        got, recovered = [], []
        link = LossyLink(
            engine,
            ConstantLatency(5.0),
            loss_probability=loss,
            recovery_delay=recovery,
            seed=seed,
            handler=lambda m, s, a: got.append((m, s, a)),
            loss_handler=lambda m, s, a: recovered.append((m, s, a)),
        )
        return link, got, recovered

    def test_zero_loss_behaves_like_link(self):
        engine = EventEngine()
        link, got, recovered = self.make(engine, 0.0)
        for i in range(20):
            link.send(i)
        engine.run()
        assert len(got) == 20
        assert recovered == []
        assert link.packets_lost == 0

    def test_losses_go_to_loss_handler_with_delay(self):
        engine = EventEngine()
        link, got, recovered = self.make(engine, 0.9999, recovery=100.0, seed=1)
        link.send("x")
        engine.run()
        assert got == []
        assert recovered == [("x", 0.0, 105.0)]
        assert link.packets_lost == 1

    def test_loss_rate_approximation(self):
        engine = EventEngine()
        link, got, recovered = self.make(engine, 0.2, seed=2)
        for i in range(5000):
            link.send(i)
        engine.run()
        assert len(recovered) / 5000 == pytest.approx(0.2, abs=0.03)
        assert len(got) + len(recovered) == 5000

    def test_loss_decisions_deterministic(self):
        def run_once():
            engine = EventEngine()
            link, got, recovered = self.make(engine, 0.3, seed=7)
            for i in range(100):
                link.send(i)
            engine.run()
            return [m for m, _, _ in recovered]

        assert run_once() == run_once()

    def test_recovery_falls_back_to_main_handler(self):
        engine = EventEngine()
        got = []
        link = LossyLink(
            engine,
            ConstantLatency(5.0),
            loss_probability=0.9999,
            recovery_delay=50.0,
            seed=1,
            handler=lambda m, s, a: got.append((m, a)),
        )
        link.send("x")
        engine.run()
        assert got == [("x", 55.0)]

    def test_validation(self):
        engine = EventEngine()
        with pytest.raises(ValueError):
            LossyLink(engine, ConstantLatency(1.0), loss_probability=1.5)
        with pytest.raises(ValueError):
            LossyLink(engine, ConstantLatency(1.0), recovery_delay=-1.0)

    def test_lost_packets_do_not_block_fifo(self):
        # A lost packet's (late) recovery must not delay later packets.
        engine = EventEngine()
        link, got, recovered = self.make(engine, 0.9999, recovery=1000.0, seed=1)
        link.send("lost")
        # Temporarily drop loss so the next packet goes through cleanly.
        link.loss_probability = 0.0
        engine.schedule_at(1.0, lambda: link.send("ok"))
        engine.run()
        assert got[0][0] == "ok"
        assert got[0][2] == 6.0  # 1.0 + 5.0, unaffected by the recovery
        assert recovered[0][0] == "lost"
