"""Regression pin for the "Table 5" chaos degradation matrix.

The table digest hashes every cell's clean/faulted trade-ordering digest
(position-ordered ``mp_id:trade_seq:position`` triples), so it moves if
*any* engine run in the matrix executes or matches differently — a
change to fault scheduling, seed-substream derivation, scenario specs,
or the matchers themselves all surface here.  Update the constant only
for an intentional, understood behaviour change, and note why in the
commit message.

The same matrix is run at ``jobs=1`` and ``jobs=2``, so this test is
also the byte-identical parallel-vs-serial acceptance check.
"""

from repro.experiments.chaos_tables import chaos_table
from repro.parallel import cell_seed

PINNED_MATRIX = dict(
    schemes=["direct", "dbo"],
    plans=["link-flaky", "partition"],
    n_seeds=2,
    base_seed=7,
    participants=3,
    duration=3_000.0,
)

PINNED_DIGEST = "72fc68f31a22d667d941de4e870e3577444a3185db07af0df40848bec95ee453"

# The first cell's derived seed, pinned separately so a digest mismatch
# can be triaged: if this moves, the substream derivation changed; if
# only the table digest moves, engine behaviour changed.
PINNED_FIRST_SEED = cell_seed(7, "direct", "cloud", "link-flaky", 0)


def test_table5_digest_is_pinned():
    table = chaos_table(**PINNED_MATRIX)
    assert table.cells[0].cell.seed == PINNED_FIRST_SEED
    assert table.digest() == PINNED_DIGEST
    assert table.to_dict()["table_digest"] == PINNED_DIGEST


def test_table5_digest_is_jobs_invariant():
    serial = chaos_table(**PINNED_MATRIX, jobs=1)
    parallel = chaos_table(**PINNED_MATRIX, jobs=2)
    assert serial.digest() == PINNED_DIGEST
    assert parallel.digest() == PINNED_DIGEST
    assert serial.to_dict() == parallel.to_dict()


def test_seed_substreams_are_pinned():
    # The derivation itself is part of the contract: these values came
    # from the SplitMix64 substream walk and must never drift.
    assert cell_seed(7, "direct", "cloud", "link-flaky", 0) == PINNED_FIRST_SEED
    assert cell_seed(7, "direct", "cloud", "link-flaky", 0) != cell_seed(
        7, "direct", "cloud", "link-flaky", 1
    )
    assert cell_seed(7, "direct", "cloud", "link-flaky", 0) != cell_seed(
        7, "dbo", "cloud", "link-flaky", 0
    )
