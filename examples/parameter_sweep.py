#!/usr/bin/env python
"""Parameter study with statistical rigor: δ's latency/fairness trade-off.

§4.2.1: "δ presents a trade-off between latency and fairness (how large
of a horizon can we pick)."  This example sweeps the horizon with the
analysis toolkit: each configuration runs across several seeds; fairness
is reported with a pooled Wilson confidence interval and latency as
mean ± CI — the difference between a point estimate and a claim.

The workload draws response times in [5, 50) µs against a 20 µs data
interval, so slow responders straddle batch deliveries and small
horizons leave part of every race outside the guarantee.  The network uses
*uncorrelated* per-packet jitter: on temporally correlated paths (the
usual cloud case, §6.3.2) DBO stays fair far beyond the horizon and the
trade-off would be invisible — try swapping in
``repro.experiments.scenarios.cloud_specs`` to see exactly that.

Run:  python examples/parameter_sweep.py
"""

from repro.analysis.stats import aggregate_fairness, aggregate_latency, run_across_seeds
from repro.baselines.base import NetworkSpec
from repro.core.params import DBOParams
from repro.core.system import DBODeployment
from repro.exchange.feed import FeedConfig
from repro.metrics.report import render_table
from repro.net.latency import UniformJitterLatency
from repro.participants.response_time import UniformResponseTime

DELTAS = (10.0, 20.0, 35.0, 50.0)
SEEDS = (1, 2, 3)
DURATION_US = 15_000.0
N_PARTICIPANTS = 5


def jitter_specs():
    """Uncorrelated per-packet jitter: delivery gaps vary across MPs."""
    return [
        NetworkSpec(
            forward=UniformJitterLatency(10.0 + i, 6.0, seed=50 + 2 * i),
            reverse=UniformJitterLatency(10.0 + i, 6.0, seed=51 + 2 * i),
        )
        for i in range(N_PARTICIPANTS)
    ]


def run_for_delta(delta: float):
    def run(seed: int):
        deployment = DBODeployment(
            jitter_specs(),
            params=DBOParams(delta=delta, kappa=0.25, tau=20.0),
            feed_config=FeedConfig(interval=20.0),
            response_time_model=UniformResponseTime(low=5.0, high=50.0, seed=seed),
            seed=seed,
        )
        return deployment.run(duration=DURATION_US)

    return run_across_seeds(run, seeds=SEEDS)


def main() -> None:
    rows = []
    for delta in DELTAS:
        multi = run_for_delta(delta)
        fairness = aggregate_fairness(multi)
        latency = aggregate_latency(multi, statistic="avg")
        ci_low, ci_high = fairness["ci"]
        rows.append(
            [
                delta,
                100.0 * fairness["ratio"],
                f"[{100 * ci_low:.2f}, {100 * ci_high:.2f}]",
                latency.mean,
                f"[{latency.ci_low:.1f}, {latency.ci_high:.1f}]",
            ]
        )
    print(
        render_table(
            ["delta (us)", "fairness %", "95% CI", "avg latency", "95% CI"],
            rows,
            title=(
                f"Horizon sweep, RT ~ U[5, 50) µs, {len(SEEDS)} seeds x "
                f"{DURATION_US / 1000:.0f} ms each"
            ),
        )
    )
    print()
    print("Below δ = 50 µs some races fall outside the guaranteed horizon")
    print("(their fairness CI excludes 100 %); raising δ buys them back at")
    print("the price of batching latency — the paper's stated trade-off.")


if __name__ == "__main__":
    main()
