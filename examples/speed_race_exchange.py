#!/usr/bin/env python
"""A full exchange with real matching: who captures the opportunities?

This example turns trade *ordering* into trade *outcomes*.  A market
maker quotes around every tick; speed racers cross the spread after tiny,
known response times.  The matching engine executes for real (price-time
priority on a limit order book), so whoever is sequenced first at the CES
captures the maker's liquidity.

We run the identical market twice — Direct delivery and DBO — and compare
how often the *genuinely fastest* racer in each race captured the fill.
Under Direct, the racer with the luckiest network path wins; under DBO
the fastest responder wins, as an on-premise exchange would guarantee.

Run:  python examples/speed_race_exchange.py
"""

from collections import Counter

from repro import DBOParams, cloud_specs
from repro.baselines.direct import DirectDeployment
from repro.core.system import DBODeployment
from repro.exchange.accounting import Ledger
from repro.exchange.feed import FeedConfig
from repro.participants.response_time import RaceResponseTime
from repro.participants.strategies import MarketMaker, SpeedRacer

N_RACERS = 4
DURATION_US = 40_000.0


def build_and_run(scheme_cls, specs, **kwargs):
    """Run one scheme with a maker (mp0) + racers (mp1..) and real matching."""

    def strategies(index):
        if index == 0:
            return MarketMaker(half_spread=0.05, quantity=N_RACERS)
        return SpeedRacer(seed=index)

    deployment = scheme_cls(
        specs,
        feed_config=FeedConfig(interval=40.0, price_volatility=0.0),
        # mp0 (the maker) races too, but we only score mp1..mpN below.
        response_time_model=RaceResponseTime(
            N_RACERS + 1, low=5.0, high=18.0, gap=0.2, seed=3
        ),
        strategy_factory=strategies,
        execute_trades=True,
        seed=9,
        **kwargs,
    )
    result = deployment.run(duration=DURATION_US)
    return deployment, result


def score_races(deployment, result):
    """Per race: did the fastest racer get the earliest execution slot?"""
    me = deployment.ces.matching_engine
    fastest_won = 0
    races = 0
    for trigger, trades in result.trades_by_trigger().items():
        racers = [t for t in trades if t.mp_id != "mp0" and t.completed]
        if len(racers) < 2:
            continue
        races += 1
        fastest = min(racers, key=lambda t: t.response_time)
        first_sequenced = min(racers, key=lambda t: t.position)
        if fastest.key == first_sequenced.key:
            fastest_won += 1
    return fastest_won, races


def fill_counts(deployment):
    """How many executed lots each racer captured."""
    counts = Counter()
    for execution in deployment.ces.matching_engine.book.executions:
        for key in (execution.buy_key, execution.sell_key):
            if key[0] != "mp0":
                counts[key[0]] += execution.quantity
    return counts


def main() -> None:
    for label, scheme_cls, kwargs in [
        ("Direct delivery (FCFS)", DirectDeployment, {}),
        ("DBO", DBODeployment, {"params": DBOParams(delta=20.0)}),
    ]:
        specs = cloud_specs(N_RACERS + 1, seed=12)
        deployment, result = build_and_run(scheme_cls, specs, **kwargs)
        won, races = score_races(deployment, result)
        fills = fill_counts(deployment)
        executions = len(deployment.ces.matching_engine.book.executions)
        ledger = Ledger()
        ledger.apply_all(deployment.ces.matching_engine.book.executions)
        mark = deployment.ces.feed.generated[-1].price
        pnl = {
            owner: round(profit, 2)
            for owner, profit, _, _ in ledger.pnl_table(mark)
        }
        print(f"=== {label} ===")
        print(f"  races scored:              {races}")
        print(f"  fastest racer sequenced 1st: {won} ({100.0 * won / max(races,1):.1f} %)")
        print(f"  executions on the book:    {executions}")
        print(f"  lots captured per racer:   {dict(sorted(fills.items()))}")
        print(f"  marked PnL (zero-sum):     {pnl}")
        print()


if __name__ == "__main__":
    main()
