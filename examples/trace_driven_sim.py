#!/usr/bin/env python
"""Trace-driven simulation (§6.4): replay a cloud RTT trace at scale.

Reproduces the paper's simulation methodology end to end:

1. synthesize a Figure-11-shaped RTT trace (or load your own CSV);
2. derive per-participant one-way latency models by taking random slices
   of the trace and halving the RTTs;
3. run DBO at several participant counts and print latency vs scale,
   including the Max-RTT lower bound of Theorem 3.

Run:  python examples/trace_driven_sim.py [path/to/trace.csv]
"""

import sys

from repro import DBOParams, run_scheme, summarize, trace_specs
from repro.experiments.scenarios import sim_trace
from repro.metrics.report import render_series
from repro.net.trace import load_trace_csv, save_trace_csv

PARTICIPANT_COUNTS = (5, 15, 30)
DURATION_US = 15_000.0


def main() -> None:
    if len(sys.argv) > 1:
        trace = load_trace_csv(sys.argv[1])
        print(f"loaded trace from {sys.argv[1]}")
    else:
        trace = sim_trace(seed=2023)
        save_trace_csv(trace, "/tmp/dbo_example_trace.csv")
        print("synthesized a Figure-11-shaped trace "
              "(saved to /tmp/dbo_example_trace.csv)")
    print(
        f"trace: {trace.duration / 1000:.0f} ms, RTT "
        f"min {trace.min_value():.1f} / mean {trace.mean_value():.1f} / "
        f"max {trace.max_value():.1f} µs"
    )
    print()

    mean_dbo, p99_dbo, mean_bound = [], [], []
    for count in PARTICIPANT_COUNTS:
        specs = trace_specs(count, trace=trace, seed=13)
        summary = summarize(
            run_scheme("dbo", specs, duration=DURATION_US, params=DBOParams())
        )
        mean_dbo.append(summary.latency.avg)
        p99_dbo.append(summary.latency.p99)
        mean_bound.append(summary.max_rtt.avg)
        # Guaranteed LRTF up to the (negligible) RB clock-drift margin:
        # sub-nanosecond response-time gaps can flip (§3 "Clock-drift rate").
        assert summary.fairness.ratio > 0.999

    print(
        render_series(
            "participants",
            list(PARTICIPANT_COUNTS),
            {
                "DBO mean (µs)": mean_dbo,
                "Max-RTT bound mean (µs)": mean_bound,
                "DBO p99 (µs)": p99_dbo,
            },
            title="Latency vs scale on the replayed trace (fairness > 99.9 % throughout)",
        )
    )
    print()
    print("The bound (max round trip over all participants) grows as more")
    print("random trace slices are drawn — more chances to include a spike —")
    print("and DBO tracks it with a small batching/pacing/heartbeat overhead.")


if __name__ == "__main__":
    main()
