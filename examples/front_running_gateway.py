#!/usr/bin/env python
"""Front-running prevention (Appendix E): the egress gateway in action.

Scenario: participant "fast" receives market data a few hundred µs before
participant "slow" (a latency spike on slow's path).  "fast" immediately
tries to relay the tick to an accomplice outside the cloud.  The egress
gateway tags the outbound message with fast's delivery clock and holds it
until *every* participant has received the embedded data point — so the
relay can never beat the release buffers.

Run:  python examples/front_running_gateway.py
"""

from repro.core.delivery_clock import DeliveryClock
from repro.core.gateway import EgressGateway

DATA_INTERVAL_US = 40.0


def main() -> None:
    released = []
    gateway = EgressGateway(
        participants=["fast", "slow"],
        sink=lambda message, now: released.append((message, now)),
    )

    fast_clock = DeliveryClock()
    slow_clock = DeliveryClock()

    print("t=100.0  point 0 delivered to 'fast'; 'slow' is stuck in a spike")
    fast_clock.on_delivery(0, 100.0)
    gateway.on_clock_report("fast", fast_clock.read(100.0), now=100.0)

    print("t=101.5  'fast' relays data out of the cloud (tagged ⟨0, 1.5⟩)")
    gateway.on_egress("fast", "tick-0-contents", fast_clock.read(101.5), now=101.5)
    print(f"         gateway buffered it: pending = {gateway.pending_count}, "
          f"released = {len(released)}")

    print("t=420.0  spike over: point 0 finally delivered to 'slow'")
    slow_clock.on_delivery(0, 420.0)
    gateway.on_clock_report("slow", slow_clock.read(420.0), now=420.0)

    message, when = released[0]
    print(f"         gateway released the relay at t={when:.1f} "
          f"(held for {when - 101.5:.1f} µs)")
    print()
    print("The relay left the cloud only after both participants held the")
    print("data — the accomplice gained nothing.  Note: trade orders bypass")
    print("the gateway entirely, so speed-trade latency is unaffected.")

    assert when >= 420.0
    assert message.tag.last_point_id == 0


if __name__ == "__main__":
    main()
