#!/usr/bin/env python
"""External data streams (§4.2.6): racing on news, fairly.

News events (CPI prints, earnings headlines) trigger speed races just
like market data — but they arrive from outside the cloud over
internet-grade paths with millisecond jitter, and existing exchanges give
no simultaneity guarantee for them.  DBO's answer: the CES *serializes*
the external stream into the market-data stream (the "super stream");
once an event carries a data-point id, batching, pacing and delivery
clocks give it the same LRTF guarantee as any native tick.

This example attaches a news source to both a Direct and a DBO
deployment and scores only the news-triggered races.

Run:  python examples/news_super_stream.py
"""

from repro.baselines.base import NetworkSpec
from repro.baselines.direct import DirectDeployment
from repro.core.params import DBOParams
from repro.core.system import DBODeployment
from repro.metrics.fairness import pairwise_correct
from repro.net.latency import UniformJitterLatency
from repro.participants.response_time import RaceResponseTime

N_PARTICIPANTS = 4
DURATION_US = 30_000.0


def cloud_paths():
    """Participants with unequal, jittery paths inside the cloud."""
    return [
        NetworkSpec(
            forward=UniformJitterLatency(8.0 + 3.0 * i, 4.0, seed=70 + i),
            reverse=UniformJitterLatency(8.0 + 3.0 * i, 4.0, seed=80 + i),
        )
        for i in range(N_PARTICIPANTS)
    ]


def run(deployment_cls, **kwargs):
    deployment = deployment_cls(
        cloud_paths(),
        response_time_model=RaceResponseTime(
            N_PARTICIPANTS, low=5.0, high=18.0, gap=0.2, seed=3
        ),
        seed=5,
        **kwargs,
    )
    # A news wire: ~1 headline per 800 µs, arriving over the internet
    # (2 ms base, 1.5 ms jitter — the paper's "order of milliseconds").
    deployment.add_external_source(
        "news-wire",
        UniformJitterLatency(2000.0, 1500.0, seed=99),
        mean_interval=800.0,
        seed=9,
    )
    result = deployment.run(duration=DURATION_US)
    return deployment, result


def score_news_races(deployment, result):
    news_ids = {p.point_id for p in deployment.stream_merger.merged}
    races = result.trades_by_trigger()
    correct = total = 0
    for point_id in news_ids:
        for trades in [races.get(point_id, [])]:
            for i in range(len(trades)):
                for j in range(i + 1, len(trades)):
                    verdict = pairwise_correct(trades[i], trades[j])
                    if verdict is None:
                        continue
                    total += 1
                    correct += bool(verdict)
    return correct, total, len(news_ids)


def main() -> None:
    for label, cls, kwargs in [
        ("Direct delivery", DirectDeployment, {}),
        ("DBO (super stream)", DBODeployment, {"params": DBOParams(delta=20.0)}),
    ]:
        deployment, result = run(cls, **kwargs)
        correct, total, headlines = score_news_races(deployment, result)
        print(f"=== {label} ===")
        print(f"  headlines merged into the stream: {headlines}")
        print(f"  news-race pairs ordered correctly: {correct}/{total} "
              f"({100.0 * correct / max(total, 1):.1f} %)")
        print()
    print("The internet leg's millisecond jitter delays *when* a headline")
    print("enters the stream — identically for everyone.  Once merged, DBO")
    print("orders the responses by response time, guaranteed; Direct still")
    print("rewards whoever's cloud path was luckier.")


if __name__ == "__main__":
    main()
