#!/usr/bin/env python
"""Straggler mitigation (§4.2.1): one sick participant vs the market.

Theorem 3 says fairness forces everyone to wait for the slowest
participant's round trip.  When mp0's forward path suffers a multi-
millisecond outage, a DBO deployment without mitigation stalls every
trade; with a straggler threshold, the ordering buffer stops waiting for
mp0, keeps everyone else fast, and lets mp0 bear the (temporary)
unfairness — exactly the trade the paper describes.

Run:  python examples/straggler_mitigation.py
"""

from repro import DBOParams, NetworkSpec
from repro.core.system import DBODeployment
from repro.metrics.fairness import evaluate_fairness
from repro.metrics.latency import LatencyStats
from repro.metrics.report import render_table
from repro.net.latency import CompositeLatency, ConstantLatency, StepLatency

SPIKE_START_US = 5_000.0
SPIKE_END_US = 12_000.0
SPIKE_HEIGHT_US = 4_000.0
DURATION_US = 25_000.0


def build_specs():
    spike = StepLatency(
        [(0.0, 0.0), (SPIKE_START_US, SPIKE_HEIGHT_US), (SPIKE_END_US, 0.0)]
    )
    specs = [
        NetworkSpec(
            forward=CompositeLatency([ConstantLatency(10.0), spike]),
            reverse=ConstantLatency(10.0),
        )
    ]
    for i in range(1, 4):
        specs.append(
            NetworkSpec(
                forward=ConstantLatency(10.0 + i),
                reverse=ConstantLatency(10.0 + i),
            )
        )
    return specs


def run(threshold):
    from repro.participants.response_time import UniformResponseTime

    deployment = DBODeployment(
        build_specs(),
        params=DBOParams(delta=20.0, straggler_threshold=threshold),
        # Response times strictly inside the horizon: while the spike
        # drains, mp0's inter-batch gap shrinks to exactly δ, so RTs at
        # the δ boundary would fall outside the LRTF guarantee.
        response_time_model=UniformResponseTime(low=5.0, high=19.0),
        seed=4,
    )
    result = deployment.run(duration=DURATION_US, drain=40_000.0)
    healthy = LatencyStats.from_samples(
        [
            t.forward_time - result.generation_times[t.trigger_point] - t.response_time
            for t in result.completed_trades
            if t.mp_id != "mp0"
        ]
    )
    straggler = LatencyStats.from_samples(
        [
            t.forward_time - result.generation_times[t.trigger_point] - t.response_time
            for t in result.completed_trades
            if t.mp_id == "mp0"
        ]
    )
    fairness = evaluate_fairness(result)
    return healthy, straggler, fairness


def main() -> None:
    rows = []
    for label, threshold in [("mitigation off", None), ("threshold = 300 µs", 300.0)]:
        healthy, straggler, fairness = run(threshold)
        rows.append(
            [
                label,
                fairness.percent,
                healthy.p50,
                healthy.maximum,
                straggler.maximum,
            ]
        )
    print(
        render_table(
            ["config", "fairness %", "healthy p50", "healthy max", "straggler max"],
            rows,
            title=(
                f"mp0's path spikes +{SPIKE_HEIGHT_US:.0f} µs for "
                f"{(SPIKE_END_US - SPIKE_START_US) / 1000:.0f} ms — "
                "who pays for it?"
            ),
        )
    )
    print()
    print(
        "Without mitigation every participant's worst-case latency absorbs\n"
        "the outage (fairness stays ~perfect — sub-nanosecond response-time\n"
        "margins can still flip under RB clock drift, Theorem 3's fine\n"
        "print).  With the threshold, healthy participants stay at\n"
        "microsecond latency and only mp0's own trades are late/unfairly\n"
        "ordered."
    )


if __name__ == "__main__":
    main()
