#!/usr/bin/env python
"""Quickstart: run DBO and Direct delivery on the same cloud network.

Builds a 10-participant cloud scenario (heterogeneous paths, jitter,
occasional latency spikes), runs the same speed-race workload through
Direct delivery (today's FCFS sequencing) and through DBO, and prints the
paper-style fairness/latency comparison.

Run:  python examples/quickstart.py
"""

from repro import DBOParams, cloud_specs, comparison_table, run_scheme, summarize
from repro.participants.response_time import RaceResponseTime

N_PARTICIPANTS = 10
DURATION_US = 50_000.0  # 50 ms of market data at one tick per 40 µs


def main() -> None:
    # One NetworkSpec per participant: non-equidistant forward/reverse
    # paths — the cloud condition that breaks FCFS fairness.
    specs = cloud_specs(N_PARTICIPANTS, seed=12)

    # The paper's workload: every tick opens a speed race; competitors
    # finish 0.1 µs apart, far inside the network's latency skew.
    workload = RaceResponseTime(N_PARTICIPANTS, low=5.0, high=20.0, gap=0.1, seed=7)

    direct = summarize(
        run_scheme(
            "direct",
            specs,
            duration=DURATION_US,
            response_time_model=workload,
        )
    )
    dbo = summarize(
        run_scheme(
            "dbo",
            specs,
            duration=DURATION_US,
            params=DBOParams(delta=20.0, kappa=0.25, tau=20.0),
            response_time_model=workload,
        )
    )

    print(comparison_table([direct, dbo], title="Direct vs DBO (10 MPs, cloud network)"))
    print()
    print(
        f"Direct delivery ordered {direct.fairness.correct_pairs} of "
        f"{direct.fairness.total_pairs} competing pairs correctly "
        f"({direct.fairness.percent:.1f} %)."
    )
    print(
        f"DBO ordered {dbo.fairness.correct_pairs} of "
        f"{dbo.fairness.total_pairs} ({dbo.fairness.percent:.1f} %) — "
        f"guaranteed LRTF — at {dbo.latency.avg - direct.latency.avg:.1f} µs "
        "extra average latency."
    )


if __name__ == "__main__":
    main()
